//! Reproduces Figure 4: load-balanced run, ascending bandwidth order.
use gs_bench::util::arg_usize;
use gs_scatter::paper::N_RAYS_1999;
fn main() {
    let n = arg_usize("--rays", N_RAYS_1999);
    let desc = gs_bench::experiments::figures::fig3(n);
    let clean = gs_bench::experiments::figures::fig4(n, false);
    let spiked = gs_bench::experiments::figures::fig4(n, true);
    print!("{}", spiked.rendering);
    println!(
        "measured here (with the sekhmet load peak §5.2 mentions): earliest {:.0} s, latest {:.0} s, imbalance {:.1}%",
        spiked.min_finish, spiked.max_finish, spiked.imbalance * 100.0
    );
    println!(
        "without the peak: latest {:.0} s; descending order (Fig. 3): {:.0} s",
        clean.max_finish, desc.max_finish
    );
    println!(
        "ascending-order penalty: +{:.0} s (paper: +56 s)",
        clean.max_finish - desc.max_finish
    );
}
