//! End-to-end §2.2 application on the emulated Table-1 grid.
use gs_bench::experiments::tomo::tomo_e2e;
use gs_bench::util::{arg_u64, arg_usize};
fn main() {
    let n = arg_usize("--rays", 20_000);
    let seed = arg_u64("--seed", 1999);
    let cmp = tomo_e2e(n, seed);
    println!("seismic tomography end-to-end, {n} rays, 16 emulated processors");
    println!("(virtual seconds replay the grid; wall seconds are this host's real ray tracing)\n");
    for (label, r) in [("uniform (original program)", &cmp.uniform), ("balanced (scatterv)", &cmp.balanced)] {
        println!(
            "{label:<28} virtual makespan {:>9.2} s   wall {:>6.2} s   checksum {:.6e}",
            r.virtual_makespan, r.wall_seconds, r.checksum
        );
    }
    println!("\nspeedup from load-balancing: {:.2}x (paper: ~2x)", cmp.speedup);
}
