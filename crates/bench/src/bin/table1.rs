//! Prints Table 1 of the paper (the testbed model).
fn main() {
    print!("{}", gs_bench::experiments::figures::table1());
}
