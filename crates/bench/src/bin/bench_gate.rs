//! CI bench regression gate: re-runs the smoke-sized benchmarks
//! (`algo_runtimes --smoke`, `fault_sweep --smoke`, `serve_load
//! --smoke`, `sim_scale --smoke`) and compares their deterministic
//! fields — optimal makespans, variant agreement, lost items, incident
//! counts, daemon cache invariants, simulator event counts — against
//! the committed baselines. Timing fields are machine-dependent and
//! ignored.
//!
//! The committed **full** sweeps are additionally checked for their
//! performance contracts — CI does not re-run the full-size runs, it
//! verifies the committed numbers:
//! * `--dp-full` (default `BENCH_dp.json`): D&C kernel ≥ 3× over
//!   serial Algorithm 2 at n = 100 000, p = 64;
//! * `--serve-full` (default `BENCH_serve.json`): daemon warm
//!   throughput ≥ 10 000 req/s with sub-millisecond p50;
//! * `--sim-full` (default `BENCH_sim.json`): calendar-queue fast path
//!   ≥ 10× events/sec over the seed heap engine on at least one
//!   classic-timed row with p ≥ 10⁴ (the 10⁷ row in the committed
//!   document).
//!
//! Flags: `--dp PATH` (default `BENCH_dp.smoke.json`), `--dp-full PATH`,
//! `--faults PATH` (default `BENCH_faults.smoke.json`), `--serve PATH`
//! (default `BENCH_serve.smoke.json`), `--serve-full PATH`,
//! `--sim PATH` (default `BENCH_sim.smoke.json`), `--sim-full PATH`,
//! `--threads T`, `--tolerance R` (relative, default 1e-4), `--update`
//! (rewrite the smoke baselines from the fresh run instead of
//! checking). Exits nonzero on any mismatch.
use std::process::ExitCode;

use gs_bench::experiments::faultexp::{fault_sweep, fault_sweep_json};
use gs_bench::experiments::runtimes::{dp_perf_json, dp_perf_trajectory};
use gs_bench::experiments::serveexp::{serve_load, serve_load_json, ServeLoadConfig};
use gs_bench::experiments::simexp::{sim_scale, sim_scale_json, SimScaleConfig};
use gs_bench::gate::{
    check_dc_speedup, check_dp, check_faults, check_serve, check_serve_perf, check_sim,
    check_sim_perf, DC_GATE_CASE, DC_GATE_MIN_SPEEDUP, SERVE_GATE_MIN_RPS, SIM_GATE_MIN_SPEEDUP,
    SMOKE_DP_CASES, SMOKE_FAULT_ITEMS, SMOKE_FAULT_SEEDS,
};
use gs_bench::util::{arg_f64, arg_flag, arg_str, arg_usize};
use gs_scatter::obs::json::parse;

fn main() -> ExitCode {
    let dp_path = arg_str("--dp", "BENCH_dp.smoke.json");
    let dp_full_path = arg_str("--dp-full", "BENCH_dp.json");
    let faults_path = arg_str("--faults", "BENCH_faults.smoke.json");
    let serve_path = arg_str("--serve", "BENCH_serve.smoke.json");
    let serve_full_path = arg_str("--serve-full", "BENCH_serve.json");
    let sim_path = arg_str("--sim", "BENCH_sim.smoke.json");
    let sim_full_path = arg_str("--sim-full", "BENCH_sim.json");
    let threads = arg_usize("--threads", 4);
    let tol = arg_f64("--tolerance", 1e-4);
    let update = arg_flag("--update");

    println!(
        "bench gate: dp cases {SMOKE_DP_CASES:?}, fault sweep n = {SMOKE_FAULT_ITEMS} \
         seeds {SMOKE_FAULT_SEEDS:?}"
    );
    let dp = dp_perf_trajectory(SMOKE_DP_CASES, threads);
    let (_, faults) = fault_sweep(SMOKE_FAULT_ITEMS, SMOKE_FAULT_SEEDS);
    let served = serve_load(ServeLoadConfig::smoke());
    let simmed = sim_scale(&SimScaleConfig::smoke());

    if update {
        std::fs::write(&dp_path, dp_perf_json(&dp, threads))
            .unwrap_or_else(|e| panic!("write {dp_path}: {e}"));
        std::fs::write(&faults_path, fault_sweep_json(SMOKE_FAULT_ITEMS, &faults, None))
            .unwrap_or_else(|e| panic!("write {faults_path}: {e}"));
        std::fs::write(&serve_path, serve_load_json(&served))
            .unwrap_or_else(|e| panic!("write {serve_path}: {e}"));
        std::fs::write(&sim_path, sim_scale_json(&simmed))
            .unwrap_or_else(|e| panic!("write {sim_path}: {e}"));
        println!("baselines rewritten: {dp_path}, {faults_path}, {serve_path}, {sim_path}");
        return ExitCode::SUCCESS;
    }

    let load = |path: &str| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {path}: {e} (run with --update to create it)"));
        parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    };
    let mut bad = check_dp(&load(&dp_path), &dp, tol);
    bad.extend(check_faults(&load(&faults_path), &faults, tol));
    bad.extend(check_serve(&load(&serve_path), &served, tol));
    bad.extend(check_sim(&load(&sim_path), &simmed, tol));
    bad.extend(check_dc_speedup(&load(&dp_full_path)));
    bad.extend(check_serve_perf(&load(&serve_full_path)));
    bad.extend(check_sim_perf(&load(&sim_full_path)));

    if bad.is_empty() {
        println!(
            "bench gate: OK ({} dp row(s), {} fault row(s), serve + sim smoke runs match \
             the baselines; committed {dp_full_path} holds the >= {DC_GATE_MIN_SPEEDUP}x dc \
             speedup at (n, p) = {DC_GATE_CASE:?}; committed {serve_full_path} holds \
             >= {SERVE_GATE_MIN_RPS:.0} req/s warm with sub-ms p50; committed \
             {sim_full_path} holds the >= {SIM_GATE_MIN_SPEEDUP}x fast-path speedup; \
             tolerance {tol:.0e})",
            dp.len(),
            faults.len()
        );
        ExitCode::SUCCESS
    } else {
        for m in &bad {
            eprintln!("bench gate: MISMATCH {m}");
        }
        eprintln!(
            "bench gate: {} mismatch(es) vs {dp_path} / {faults_path} / {serve_path} / \
             {sim_path}; if the model change is intended, regenerate with \
             `bench_gate --update`",
            bad.len()
        );
        ExitCode::FAILURE
    }
}
