//! Reproduces Figure 3: load-balanced run, descending bandwidth.
use gs_bench::util::arg_usize;
use gs_scatter::paper::N_RAYS_1999;
fn main() {
    let n = arg_usize("--rays", N_RAYS_1999);
    let uniform = gs_bench::experiments::figures::fig2(n);
    let s = gs_bench::experiments::figures::fig3(n);
    print!("{}", s.rendering);
    println!(
        "measured here: earliest {:.0} s, latest {:.0} s, imbalance {:.1}%",
        s.min_finish,
        s.max_finish,
        s.imbalance * 100.0
    );
    println!(
        "speedup over the uniform run (Fig. 2): {:.2}x (paper: ~2x)",
        uniform.max_finish / s.max_finish
    );
}
