//! Reproduces Figure 2: the original program (uniform distribution).
use gs_bench::util::arg_usize;
use gs_scatter::paper::N_RAYS_1999;
fn main() {
    let n = arg_usize("--rays", N_RAYS_1999);
    let s = gs_bench::experiments::figures::fig2(n);
    print!("{}", s.rendering);
    println!(
        "measured here: earliest {:.0} s, latest {:.0} s, imbalance {:.0}%",
        s.min_finish,
        s.max_finish,
        s.imbalance * 100.0
    );
}
