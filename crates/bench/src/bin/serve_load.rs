//! Load-generator for the planning daemon: spins up an in-process
//! `gs serve` on an ephemeral loopback port, measures cold (uncached)
//! request latency and warm (cached) throughput, and writes the
//! `BENCH_serve.json` document the docs and the bench gate reference.
//!
//! Flags: `--smoke` (CI sizing, writes `BENCH_serve.smoke.json`),
//! `--json PATH` (override the output path), `--clients C`,
//! `--warm N`, `--cold N`, `--items N`.

use gs_bench::experiments::serveexp::{serve_load, serve_load_json, ServeLoadConfig};
use gs_bench::util::{arg_flag, arg_str, arg_u64, arg_usize, fmt_secs, header};

fn main() {
    let smoke = arg_flag("--smoke");
    let mut cfg = if smoke { ServeLoadConfig::smoke() } else { ServeLoadConfig::full() };
    cfg.clients = arg_usize("--clients", cfg.clients);
    cfg.warm_requests = arg_usize("--warm", cfg.warm_requests);
    cfg.cold_requests = arg_usize("--cold", cfg.cold_requests);
    cfg.items = arg_u64("--items", cfg.items);
    let default_path = if smoke { "BENCH_serve.smoke.json" } else { "BENCH_serve.json" };
    let path = arg_str("--json", default_path);

    header("serve_load: planning-daemon throughput and latency");
    println!(
        "{} client(s), {} warm request(s) on one cached platform, {} cold request(s), \
         n = {} items",
        cfg.clients, cfg.warm_requests, cfg.cold_requests, cfg.items
    );

    let r = serve_load(cfg);
    println!(
        "cold  (miss): p50 {}  p95 {}  p99 {}",
        fmt_secs(r.cold_p50_secs),
        fmt_secs(r.cold_p95_secs),
        fmt_secs(r.cold_p99_secs)
    );
    println!(
        "warm  (hit):  p50 {}  p95 {}  p99 {}",
        fmt_secs(r.warm_p50_secs),
        fmt_secs(r.warm_p95_secs),
        fmt_secs(r.warm_p99_secs)
    );
    println!(
        "warm throughput: {:.0} req/s over {} ({} requests, {} clients)",
        r.warm_throughput_rps,
        fmt_secs(r.warm_wall_secs),
        r.warm_requests,
        r.clients
    );
    println!(
        "invariants: hit_only = {}, consistent = {}, shed = {}, makespan = {:.6} s",
        r.hit_only, r.consistent, r.shed, r.makespan
    );

    std::fs::write(&path, serve_load_json(&r)).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
