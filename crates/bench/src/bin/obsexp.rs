//! Three-way observability run on the Table-1 grid: predicted vs
//! simulated vs executed traces of one balanced scatter, exported as
//! JSON/CSV for `gs report`.
use gs_bench::experiments::obsexp::{export_traces, observe_three_ways};
use gs_bench::util::arg_usize;

fn main() {
    let n = arg_usize("--rays", 817_101);
    let item_bytes = arg_usize("--item-bytes", 8) as u64;
    let cmp = observe_three_ways(n, item_bytes);
    let dir = std::path::Path::new("target/obs-traces");
    let files = export_traces(&cmp, dir).expect("writable output directory");
    println!("three-way observability, n = {n} items ({item_bytes} B each)");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14}",
        "source", "makespan(s)", "busy(s)", "idle(s)", "bytes moved"
    );
    for s in &cmp.summaries {
        let busy: f64 = s.ranks.iter().map(|r| r.busy).sum();
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>12.4} {:>14}",
            s.source.as_str(),
            s.makespan,
            busy,
            s.total_idle,
            s.total_bytes
        );
    }
    println!("max |finish(executed) - finish(predicted)| = {:.6} s", cmp.max_drift);
    println!("{files} trace files written to {}", dir.display());
    println!("render with: gs report {0}/predicted.json {0}/simulated.json {0}/executed.json", dir.display());
}
