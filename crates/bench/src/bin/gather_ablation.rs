//! Extension ablation: forward-only (paper) vs gather-aware planning.
use gs_bench::experiments::gatherexp::gather_ablation;
use gs_bench::util::arg_usize;
fn main() {
    let n = arg_usize("--rays", 100_000);
    println!("gather-aware planning vs the paper's forward-only model (n = {n})");
    println!("return cost = ratio x forward link cost per item");
    println!("{:>8} {:>16} {:>16} {:>12}", "ratio", "forward-only (s)", "gather-aware (s)", "improvement");
    for r in gather_ablation(n, &[0.0, 0.5, 1.0, 5.0, 20.0, 100.0]) {
        println!(
            "{:>8.1} {:>16.2} {:>16.2} {:>11.3}x",
            r.ratio, r.forward_only, r.gather_aware, r.improvement
        );
    }
}
