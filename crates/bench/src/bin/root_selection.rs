//! §3.4 root selection on the Table-1 grid (data on dinadan).
use gs_bench::experiments::roots::root_selection;
use gs_bench::util::arg_usize;
use gs_scatter::paper::table1_rows;
fn main() {
    let n = arg_usize("--rays", 817_101);
    let choice = root_selection(n);
    let rows = table1_rows();
    println!("root selection for n = {n} rays, data initially on dinadan");
    println!("{:<4} {:<10} {:>12} {:>12} {:>12}", "#", "machine", "transfer(s)", "makespan(s)", "total(s)");
    for c in &choice.candidates {
        println!(
            "{:<4} {:<10} {:>12.1} {:>12.1} {:>12.1}{}",
            c.root + 1,
            rows[c.root].machine,
            c.transfer,
            c.makespan,
            c.total,
            if c.root == choice.root { "  <= chosen" } else { "" }
        );
    }
}
