//! Divisible-load-style multi-installment ablation on the Table-1 grid.
use gs_bench::experiments::installmentexp::installment_ablation;
use gs_bench::util::arg_usize;
fn main() {
    let n = arg_usize("--rays", 817_101);
    println!("multi-installment scatter on the balanced Table-1 plan (n = {n})");
    println!("{:>6} {:>14} {:>22}", "k", "makespan (s)", "mean 1st arrival (s)");
    for r in installment_ablation(n, &[1, 2, 4, 8, 16, 32]) {
        println!("{:>6} {:>14.3} {:>22.3}", r.k, r.makespan, r.mean_first_arrival);
    }
    println!("\nreading: with comm this small relative to compute, installments shave");
    println!("fractions of a second — the paper's single-round scatterv was the right");
    println!("simplicity/performance trade-off for this grid.");
}
