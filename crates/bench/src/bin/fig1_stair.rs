//! Renders Figure 1: the stair effect of a single-port scatter.
use gs_bench::util::arg_usize;
fn main() {
    let width = arg_usize("--width", 64);
    print!("{}", gs_bench::experiments::figures::fig1(width));
}
