//! Million-rank simulation capacity sweep: times the classic engine —
//! the seed's binary heap of boxed closures, migration pinned off —
//! against the calendar-queue fast path on the synthetic heterogeneous
//! star (docs/simulation.md), executes one plan on the pooled
//! gs-minimpi runtime, and writes the `BENCH_sim.json` document the
//! docs and the bench gate reference.
//!
//! The full sweep measures **each row in a fresh subprocess** (the
//! binary re-execs itself with `--row P`): large rows leave the
//! allocator in a state that can distort a later row's timings by
//! several x, and a fresh process per point makes every number
//! reproducible in isolation. `--smoke` runs in-process — CI only
//! compares its deterministic fields.
//!
//! Flags: `--smoke` (CI sizing, writes `BENCH_sim.smoke.json`),
//! `--json PATH` (override the output path), `--items-per-rank N`,
//! `--pool-threads T`, `--in-process` (skip subprocess isolation),
//! `--row P` (internal: measure one row, print its JSON to stdout).

use gs_bench::experiments::simexp::{
    sim_row_from_json, sim_row_json, sim_scale, sim_scale_json, sim_scale_row, SimScaleConfig,
    SimScaleReport,
};
use gs_bench::util::{arg_flag, arg_str, arg_u64, arg_usize, fmt_secs, header};

fn main() {
    let smoke = arg_flag("--smoke");
    let mut cfg = if smoke { SimScaleConfig::smoke() } else { SimScaleConfig::full() };
    cfg.items_per_rank = arg_u64("--items-per-rank", cfg.items_per_rank);
    cfg.pool_threads = arg_usize("--pool-threads", cfg.pool_threads);

    if let Some(p) = arg_opt_usize("--row") {
        // Child mode: one clean-process measurement, row JSON on stdout.
        let row = sim_scale_row(p, cfg.items_per_rank, p <= cfg.classic_max_ranks);
        println!("{}", sim_row_json(&row));
        return;
    }

    let default_path = if smoke { "BENCH_sim.smoke.json" } else { "BENCH_sim.json" };
    let path = arg_str("--json", default_path);

    header("sim_scale: classic engine vs calendar-queue fast path");
    println!(
        "sweep p = {:?}, {} item(s)/rank, classic baseline up to p = {}, pooled \
         execution at p = {} on {} worker(s)",
        cfg.ps, cfg.items_per_rank, cfg.classic_max_ranks, cfg.pool_ranks, cfg.pool_threads
    );

    let r = if smoke || arg_flag("--in-process") {
        sim_scale(&cfg)
    } else {
        sweep_in_subprocesses(&cfg)
    };
    println!(
        "{:>9} {:>10} {:>9} {:>12} {:>12} {:>8} {:>10} {:>9}",
        "p", "events", "classic", "fast", "events/sec", "speedup", "identical", "rss"
    );
    for row in &r.rows {
        println!(
            "{:>9} {:>10} {:>9} {:>12} {:>12.0} {:>8} {:>10} {:>8}M",
            row.p,
            row.events,
            if row.classic_secs > 0.0 { fmt_secs(row.classic_secs) } else { "-".into() },
            fmt_secs(row.fast_secs),
            row.fast_events_per_sec,
            if row.speedup > 0.0 { format!("{:.1}x", row.speedup) } else { "-".into() },
            row.identical,
            row.peak_rss_bytes / (1024 * 1024),
        );
    }
    if r.pool_ranks > 0 {
        println!(
            "pooled execution: p = {} on {} worker(s) in {}, clocks identical = {}",
            r.pool_ranks,
            r.pool_threads,
            fmt_secs(r.pool_secs),
            r.pool_identical
        );
    }

    std::fs::write(&path, sim_scale_json(&r)).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// Runs every row of `cfg` by re-exec'ing this binary with `--row P`,
/// so each point is measured in a fresh process. The pooled-execution
/// check runs in the parent (its workers are threads, not allocations).
fn sweep_in_subprocesses(cfg: &SimScaleConfig) -> SimScaleReport {
    let exe = std::env::current_exe().expect("current_exe");
    let mut rows = Vec::with_capacity(cfg.ps.len());
    for &p in &cfg.ps {
        let out = std::process::Command::new(&exe)
            .arg("--row")
            .arg(p.to_string())
            .arg("--items-per-rank")
            .arg(cfg.items_per_rank.to_string())
            .output()
            .unwrap_or_else(|e| panic!("spawn row p={p}: {e}"));
        assert!(
            out.status.success(),
            "row p={p} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        let row = sim_row_from_json(text.trim()).unwrap_or_else(|e| panic!("row p={p}: {e}"));
        rows.push(row);
    }
    let mut report = sim_scale(&SimScaleConfig { ps: Vec::new(), ..cfg.clone() });
    report.rows = rows;
    report
}

/// `--flag N` as `Some(N)`, absent flag as `None`.
fn arg_opt_usize(flag: &str) -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}
