//! §6 baseline: dynamic master/worker self-scheduling vs the paper's
//! static balanced scatterv, on the Table-1 grid.
use gs_bench::experiments::dynamicexp::{dynamic_vs_static, surprise_load};
use gs_bench::util::arg_usize;
fn main() {
    let n = arg_usize("--rays", 817_101);
    println!("dynamic master/worker (15 workers + dedicated master) vs static scatterv (16 procs), n = {n}\n");
    println!("{:>8} {:>10} {:>14} {:>14} {:>8}", "chunk", "latency", "dynamic (s)", "static (s)", "chunks");
    for r in dynamic_vs_static(n, &[1_000, 10_000, 50_000], &[0.0, 0.1, 0.5, 2.0]) {
        println!(
            "{:>8} {:>10.1} {:>14.1} {:>14.1} {:>8}",
            r.chunk, r.latency, r.dynamic, r.static_balanced, r.chunks
        );
    }
    println!("\nthe paper's §6 claim, measured: at grid latencies the request overhead");
    println!("dominates; with free signalling dynamic self-balances but still loses the");
    println!("master's compute capacity.\n");

    let (stale, dynamic, informed) = surprise_load(n, 10_000, 0.1);
    println!("surprise 2x load on sekhmet (static plan did not know):");
    println!("  static (stale plan)     {stale:>10.1} s");
    println!("  dynamic self-scheduling {dynamic:>10.1} s");
    println!("  static (re-planned from monitor, §3) {informed:>10.1} s");
}
