//! CI validator for Chrome trace-event span exports (`gs sim --spans`,
//! `gs trace --spans`, `gs serve --span-log`): parses the file with the
//! in-tree JSON reader and checks the structural contract of
//! `docs/observability.md` — a `traceEvents` array whose members are
//! `"M"` metadata events (name + pid) or `"X"` complete events (name,
//! cat, finite non-negative ts/dur, pid, tid, and a span id / parent
//! pair in `args`), with `"X"` events sorted by timestamp and span ids
//! unique. Exits nonzero, naming the offending event, on any violation.
//!
//! Usage: `span_check [FILE]` (default `sim_spans.json`).

use std::process::ExitCode;

use gs_scatter::obs::json::{parse, Json};

fn check(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing `traceEvents` array"))?;

    let mut spans = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    let mut ids = std::collections::HashSet::new();
    for (i, e) in events.iter().enumerate() {
        let field = |key: &str| {
            e.get(key).ok_or_else(|| format!("{path}: event {i}: missing `{key}`"))
        };
        let str_field = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("{path}: event {i}: `{key}` is not a string"))
        };
        let num_field = |key: &str| {
            field(key)?
                .as_f64()
                .ok_or_else(|| format!("{path}: event {i}: `{key}` is not a number"))
        };
        str_field("name")?;
        num_field("pid")?;
        match str_field("ph")?.as_str() {
            "M" => {
                field("args")?
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{path}: event {i}: metadata lacks args.name"))?;
            }
            "X" => {
                spans += 1;
                str_field("cat")?;
                num_field("tid")?;
                for key in ["ts", "dur"] {
                    let v = num_field(key)?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!(
                            "{path}: event {i}: `{key}` = {v} (must be finite and >= 0)"
                        ));
                    }
                }
                let ts = num_field("ts")?;
                if ts < last_ts {
                    return Err(format!(
                        "{path}: event {i}: ts {ts} out of order (previous {last_ts})"
                    ));
                }
                last_ts = ts;
                let args = field("args")?;
                let id = args
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{path}: event {i}: span lacks args.id"))?;
                if id.parse::<u64>().map_or(true, |n| n == 0) {
                    return Err(format!("{path}: event {i}: args.id `{id}` is not a span id"));
                }
                if !ids.insert(id.to_owned()) {
                    return Err(format!("{path}: event {i}: duplicate span id {id}"));
                }
                args.get("parent")
                    .and_then(Json::as_str)
                    .and_then(|p| p.parse::<u64>().ok())
                    .ok_or_else(|| format!("{path}: event {i}: span lacks args.parent"))?;
            }
            other => return Err(format!("{path}: event {i}: unknown phase `{other}`")),
        }
    }
    if spans == 0 {
        return Err(format!("{path}: no `X` span events — nothing was recorded"));
    }
    Ok(spans)
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| "sim_spans.json".into());
    match check(&path) {
        Ok(spans) => {
            println!("span_check: {path}: {spans} spans ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("span_check: {e}");
            ExitCode::FAILURE
        }
    }
}
