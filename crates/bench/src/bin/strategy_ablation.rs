//! Strategy ablation across heterogeneity levels.
use gs_bench::experiments::ablation::strategy_ablation;
use gs_bench::util::arg_usize;
fn main() {
    let p = arg_usize("--procs", 8);
    let n = arg_usize("--items", 20_000);
    println!("strategy ablation, p = {p}, n = {n} (makespans in seconds)");
    println!("{:>8} {:>10} {:>12} {:>10} {:>10} {:>9}", "spread", "uniform", "closed form", "heuristic", "exact DP", "speedup");
    for r in strategy_ablation(p, n, &[1.0, 2.0, 4.0, 8.0, 16.0]) {
        println!(
            "{:>8.1} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>8.2}x",
            r.spread, r.uniform, r.closed_form, r.heuristic, r.exact, r.available_speedup
        );
    }
}
