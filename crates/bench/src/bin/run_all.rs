//! Runs every experiment at scaled-down defaults (fast enough for a
//! laptop in a debug build; pass --full for the paper-scale n).
use gs_bench::experiments::*;
use gs_bench::util::fmt_secs;
use gs_scatter::paper::N_RAYS_1999;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let n = if full { N_RAYS_1999 } else { 100_000 };

    gs_bench::util::header("Table 1");
    print!("{}", figures::table1());

    gs_bench::util::header("Figure 1 (stair effect)");
    print!("{}", figures::fig1(64));

    gs_bench::util::header("Figure 2 (uniform)");
    let f2 = figures::fig2(n);
    print!("{}", f2.rendering);

    gs_bench::util::header("Figure 3 (balanced, descending bandwidth)");
    let f3 = figures::fig3(n);
    print!("{}", f3.rendering);
    println!("speedup over uniform: {:.2}x (paper: ~2x)", f2.max_finish / f3.max_finish);

    gs_bench::util::header("Figure 4 (balanced, ascending bandwidth)");
    let f4 = figures::fig4(n, true);
    print!("{}", f4.rendering);
    println!("ascending-order penalty vs Fig. 3: +{:.0} s", figures::fig4(n, false).max_finish - f3.max_finish);

    gs_bench::util::header("Solver runtimes (§5.2)");
    let ns = if full { vec![1_000, 10_000, 100_000] } else { vec![1_000, 5_000, 20_000] };
    let rows = runtimes::algo_runtimes(&ns, if full { 20_000 } else { 5_000 });
    for r in &rows {
        println!(
            "n = {:>7}: Alg.1 {:>12}  Alg.2 {:>12}  heuristic {:>12}  closed-form {:>12}",
            r.n,
            r.basic.map_or("(skipped)".into(), fmt_secs),
            fmt_secs(r.optimized),
            fmt_secs(r.heuristic),
            fmt_secs(r.closed_form)
        );
    }
    if let Some(est) = runtimes::extrapolate_quadratic(&rows, N_RAYS_1999) {
        println!("Alg.1 extrapolated to n = {N_RAYS_1999}: ~{}", fmt_secs(est));
    }

    gs_bench::util::header("Heuristic error (§5.2)");
    for r in runtimes::heuristic_error(&[1_000, 10_000, 50_000]) {
        println!(
            "n = {:>6}: optimal {:>10.4} s  heuristic {:>10.4} s  rel.err {:>9.2e}  within Eq.(4) bound: {}",
            r.n, r.optimal, r.heuristic, r.rel_error, r.within_bound
        );
    }

    gs_bench::util::header("Ordering study (Theorem 3)");
    let s = ordering::ordering_study(50, 6, 100_000, 2003);
    println!(
        "descending bandwidth optimal in {}/{} random platforms; mean gaps: desc {:.1e}, random {:.1e}, asc {:.1e}",
        s.desc_optimal, s.trials, s.mean_gap_desc, s.mean_gap_random, s.mean_gap_asc
    );

    gs_bench::util::header("Root selection (§3.4)");
    let choice = roots::root_selection(n);
    println!(
        "chosen root: processor {} with total time {:.1} s over {} candidates",
        choice.root + 1,
        choice.total_time,
        choice.candidates.len()
    );

    gs_bench::util::header("Strategy ablation");
    for r in ablation::strategy_ablation(8, 20_000, &[1.0, 4.0, 16.0]) {
        println!(
            "spread {:>4.0}x: uniform {:>8.2} s  closed-form {:>8.2} s  heuristic {:>8.2} s  exact {:>8.2} s  ({:.2}x available)",
            r.spread, r.uniform, r.closed_form, r.heuristic, r.exact, r.available_speedup
        );
    }

    gs_bench::util::header("Tomography end-to-end (§2.2)");
    let cmp = tomo::tomo_e2e(if full { 100_000 } else { 10_000 }, 1999);
    println!(
        "uniform {:.2} virtual s vs balanced {:.2} virtual s => {:.2}x speedup",
        cmp.uniform.virtual_makespan, cmp.balanced.virtual_makespan, cmp.speedup
    );
}
