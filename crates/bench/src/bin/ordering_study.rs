//! Ordering-policy ablation over random platforms (§4.3-4.4).
use gs_bench::experiments::ordering::ordering_study;
use gs_bench::util::{arg_u64, arg_usize};
fn main() {
    let trials = arg_usize("--trials", 100);
    let p = arg_usize("--procs", 6);
    let n = arg_usize("--items", 100_000);
    let seed = arg_u64("--seed", 2003);
    let s = ordering_study(trials, p, n, seed);
    println!("ordering study: {} random linear platforms, p = {p}, n = {n}", s.trials);
    println!("descending bandwidth optimal in {}/{} trials (Theorem 3 predicts all)", s.desc_optimal, s.trials);
    println!("mean gap to exhaustive best:");
    println!("  descending bandwidth  {:>10.3e}", s.mean_gap_desc);
    println!("  random order          {:>10.3e}", s.mean_gap_random);
    println!("  ascending bandwidth   {:>10.3e}  (worst {:.3e})", s.mean_gap_asc, s.worst_gap_asc);
}
