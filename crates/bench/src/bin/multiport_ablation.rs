//! Ablation: k-port root and WAN contention on the two-site Table-1 grid.
use gs_bench::experiments::multiport::multiport_ablation;
use gs_bench::util::arg_usize;
fn main() {
    let n = arg_usize("--rays", 817_101);
    println!("multi-port ablation of the §2.3 single-port assumption (n = {n})");
    println!("{:>6} {:>16} {:>16} {:>14}", "ports", "makespan (s)", "with WAN (s)", "stair area (s)");
    for r in multiport_ablation(n, &[1, 2, 4, 8, 16]) {
        println!(
            "{:>6} {:>16.2} {:>16.2} {:>14.2}",
            r.ports, r.makespan_free, r.makespan_wan, r.stair_free
        );
    }
    println!("\nreading: on Table 1 comm is small next to compute, so extra ports mostly");
    println!("shave the stair; the single-port assumption costs little here — which is");
    println!("why the paper's static model works as well as it does.");
}
