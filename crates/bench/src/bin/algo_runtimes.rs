//! §5.2 solver-runtime comparison (Algorithm 1 vs 2 vs heuristic), plus
//! the machine-readable engine perf trajectory (`BENCH_dp.json`):
//! serial vs parallel vs pruned Algorithm 2 across `(n, p)` points, so
//! the planning-cost story is comparable PR-over-PR.
//!
//! Flags: `--basic-cap N` (Algorithm-1 size cap), `--max-n N`,
//! `--threads T` (parallel variants), `--json PATH` (trajectory output,
//! default `BENCH_dp.json`), `--smoke` (tiny sizes for CI).
use gs_bench::experiments::runtimes::{
    algo_runtimes, dp_perf_json, dp_perf_trajectory, extrapolate_quadratic,
};
use gs_bench::util::{arg_flag, arg_str, arg_usize, fmt_secs};
use gs_scatter::paper::N_RAYS_1999;

fn main() {
    let smoke = arg_flag("--smoke");
    let cap = arg_usize("--basic-cap", if smoke { 2_000 } else { 20_000 });
    let max_n = arg_usize("--max-n", if smoke { 5_000 } else { 100_000 });
    let threads = arg_usize("--threads", 4);
    let json_path = arg_str("--json", "BENCH_dp.json");
    let mut ns = vec![1_000usize, 5_000, 20_000, 50_000, 100_000];
    ns.retain(|&n| n <= max_n);
    println!("solver runtimes on the Table-1 platform (p = 16), release-build recommended");
    println!("{:>9} {:>14} {:>14} {:>14} {:>14}", "n", "Algorithm 1", "Algorithm 2", "heuristic", "closed form");
    let rows = algo_runtimes(&ns, cap);
    for r in &rows {
        println!(
            "{:>9} {:>14} {:>14} {:>14} {:>14}",
            r.n,
            r.basic.map_or("(skipped)".into(), fmt_secs),
            fmt_secs(r.optimized),
            fmt_secs(r.heuristic),
            fmt_secs(r.closed_form),
        );
    }
    if let Some(est) = extrapolate_quadratic(&rows, N_RAYS_1999) {
        println!(
            "\nAlgorithm 1 extrapolated to n = {N_RAYS_1999}: ~{} (paper: interrupted after 2 days)",
            fmt_secs(est)
        );
    }
    println!("paper reported at n = {N_RAYS_1999}: Alg. 1 > 2 days, Alg. 2 = 6 min (PIII/933), heuristic instantaneous");

    // Engine perf trajectory: serial vs parallel vs pruned Algorithm 2
    // vs the divide-and-conquer kernel. The (100 000, 64) point runs on
    // the synthetic affine platform (Table 1 stops at p = 16) and feeds
    // the bench gate's D&C speedup contract.
    let cases: &[(usize, usize)] = if smoke {
        &[(2_000, 4), (2_000, 16)]
    } else {
        &[(10_000, 4), (10_000, 16), (100_000, 4), (100_000, 16), (100_000, 64)]
    };
    println!("\nAlgorithm-2 engine variants ({threads} threads for parallel):");
    println!(
        "{:>9} {:>4} {:>12} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "n", "p", "serial", "parallel", "pruned", "par+pruned", "dc", "identical"
    );
    let perf = dp_perf_trajectory(cases, threads);
    for r in &perf {
        println!(
            "{:>9} {:>4} {:>12} {:>12} {:>12} {:>14} {:>12} {:>10}",
            r.n,
            r.p,
            fmt_secs(r.serial_secs),
            fmt_secs(r.parallel_secs),
            fmt_secs(r.pruned_secs),
            fmt_secs(r.parallel_pruned_secs),
            fmt_secs(r.dc_secs),
            r.identical,
        );
        assert!(r.identical, "engine variants diverged at n={} p={}", r.n, r.p);
    }
    let json = dp_perf_json(&perf, threads);
    std::fs::write(&json_path, &json).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!("\nperf trajectory written to {json_path}");
}
