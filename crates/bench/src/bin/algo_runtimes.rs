//! §5.2 solver-runtime comparison (Algorithm 1 vs 2 vs heuristic).
use gs_bench::experiments::runtimes::{algo_runtimes, extrapolate_quadratic};
use gs_bench::util::{arg_usize, fmt_secs};
use gs_scatter::paper::N_RAYS_1999;
fn main() {
    let cap = arg_usize("--basic-cap", 20_000);
    let max_n = arg_usize("--max-n", 100_000);
    let mut ns = vec![1_000usize, 5_000, 20_000, 50_000, 100_000];
    ns.retain(|&n| n <= max_n);
    println!("solver runtimes on the Table-1 platform (p = 16), release-build recommended");
    println!("{:>9} {:>14} {:>14} {:>14} {:>14}", "n", "Algorithm 1", "Algorithm 2", "heuristic", "closed form");
    let rows = algo_runtimes(&ns, cap);
    for r in &rows {
        println!(
            "{:>9} {:>14} {:>14} {:>14} {:>14}",
            r.n,
            r.basic.map_or("(skipped)".into(), fmt_secs),
            fmt_secs(r.optimized),
            fmt_secs(r.heuristic),
            fmt_secs(r.closed_form),
        );
    }
    if let Some(est) = extrapolate_quadratic(&rows, N_RAYS_1999) {
        println!(
            "\nAlgorithm 1 extrapolated to n = {N_RAYS_1999}: ~{} (paper: interrupted after 2 days)",
            fmt_secs(est)
        );
    }
    println!("paper reported at n = {N_RAYS_1999}: Alg. 1 > 2 days, Alg. 2 = 6 min (PIII/933), heuristic instantaneous");
}
