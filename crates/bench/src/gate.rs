//! The bench regression gate (`bench_gate` binary): re-runs the
//! smoke-sized benchmarks and compares their **deterministic** fields
//! against baselines committed in the repository
//! (`BENCH_dp.smoke.json`, `BENCH_faults.smoke.json`,
//! `BENCH_serve.smoke.json`).
//!
//! Wall-clock fields (`*_secs`, speedups, `overhead_pct`) are
//! machine-dependent and never compared; what is compared is the model's
//! arithmetic — optimal makespans, variant agreement, lost-item and
//! incident counts — which must be bit-stable across machines. Float
//! fields are compared with a relative tolerance because the baselines
//! round to a fixed number of decimals.

use crate::experiments::faultexp::FaultSweepRow;
use crate::experiments::runtimes::DpPerfRow;
use crate::experiments::serveexp::ServeLoadReport;
use crate::experiments::simexp::SimScaleReport;
use gs_scatter::obs::json::Json;

/// The `(n, p)` points `algo_runtimes --smoke` times.
pub const SMOKE_DP_CASES: &[(usize, usize)] = &[(2_000, 4), (2_000, 16)];
/// The full-sweep `(n, p)` point the D&C speedup gate reads from the
/// committed `BENCH_dp.json`.
pub const DC_GATE_CASE: (usize, usize) = (100_000, 64);
/// Required serial-Algorithm-2-over-D&C speedup at [`DC_GATE_CASE`].
pub const DC_GATE_MIN_SPEEDUP: f64 = 3.0;
/// Items of the `fault_sweep --smoke` run.
pub const SMOKE_FAULT_ITEMS: usize = 2_000;
/// Seeds of the `fault_sweep --smoke` random fault mixes.
pub const SMOKE_FAULT_SEEDS: &[u64] = &[1999, 2000, 2001];
/// Warm throughput the committed full `BENCH_serve.json` must record
/// (plan requests per second on a cached platform).
pub const SERVE_GATE_MIN_RPS: f64 = 10_000.0;
/// Warm p50 latency bound the committed full `BENCH_serve.json` must
/// record (seconds) — the "sub-millisecond median" contract of
/// docs/serve.md.
pub const SERVE_GATE_MAX_P50: f64 = 1e-3;
/// Required fast-path-over-classic-engine events/sec speedup the
/// committed full `BENCH_sim.json` must record on at least one
/// classic-timed row with `p >= `[`SIM_GATE_MIN_RANKS`]
/// (docs/simulation.md). The classic engine's boxed-closure data path
/// only goes cache-miss bound at deep queues, so the margin lives at
/// the top of the sweep — the p = 10^6 row in the committed document.
pub const SIM_GATE_MIN_SPEEDUP: f64 = 10.0;
/// Smallest `p` eligible for the sim speedup gate (tiny worlds are
/// dominated by setup, not the event loop).
pub const SIM_GATE_MIN_RANKS: usize = 10_000;

/// `|a − b| ≤ tol·max(|b|, ε)` — relative closeness against baseline `b`.
fn rel_close(fresh: f64, baseline: f64, tol: f64) -> bool {
    (fresh - baseline).abs() <= tol * baseline.abs().max(1e-12)
}

fn as_bool(j: &Json) -> Option<bool> {
    match j {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn rows_of(baseline: &Json) -> Result<&[Json], String> {
    baseline
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "baseline has no `rows` array".to_string())
}

fn field_f64(row: &Json, key: &str) -> Result<f64, String> {
    row.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("baseline row lacks numeric `{key}`"))
}

fn field_u64(row: &Json, key: &str) -> Result<u64, String> {
    row.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("baseline row lacks integer `{key}`"))
}

/// Compares a fresh DP-perf run against a parsed baseline document.
/// Returns one human-readable message per mismatch (empty = gate
/// passes).
pub fn check_dp(baseline: &Json, fresh: &[DpPerfRow], tol: f64) -> Vec<String> {
    let mut bad = Vec::new();
    let rows = match rows_of(baseline) {
        Ok(r) => r,
        Err(e) => return vec![format!("dp: {e}")],
    };
    if rows.len() != fresh.len() {
        return vec![format!(
            "dp: baseline has {} row(s), fresh run has {}",
            rows.len(),
            fresh.len()
        )];
    }
    for (row, f) in rows.iter().zip(fresh) {
        let ctx = format!("dp row n={} p={}", f.n, f.p);
        let check = |bad: &mut Vec<String>, r: Result<(), String>| {
            if let Err(e) = r {
                bad.push(format!("{ctx}: {e}"));
            }
        };
        check(&mut bad, exact_u64(row, "n", f.n as u64));
        check(&mut bad, exact_u64(row, "p", f.p as u64));
        match row.get("identical").and_then(as_bool) {
            Some(b) if b == f.identical => {}
            Some(b) => bad.push(format!("{ctx}: identical baseline {b} fresh {}", f.identical)),
            None => bad.push(format!("{ctx}: baseline row lacks boolean `identical`")),
        }
        if !f.identical {
            bad.push(format!("{ctx}: engine variants diverged in the fresh run"));
        }
        check(&mut bad, close_f64(row, "makespan", f.makespan, tol));
    }
    bad
}

/// Compares a fresh fault sweep against a parsed baseline document.
pub fn check_faults(baseline: &Json, fresh: &[FaultSweepRow], tol: f64) -> Vec<String> {
    let mut bad = Vec::new();
    let rows = match rows_of(baseline) {
        Ok(r) => r,
        Err(e) => return vec![format!("faults: {e}")],
    };
    if rows.len() != fresh.len() {
        return vec![format!(
            "faults: baseline has {} row(s), fresh run has {}",
            rows.len(),
            fresh.len()
        )];
    }
    for (row, f) in rows.iter().zip(fresh) {
        let ctx = format!("fault row `{}`", f.scenario);
        let check = |bad: &mut Vec<String>, r: Result<(), String>| {
            if let Err(e) = r {
                bad.push(format!("{ctx}: {e}"));
            }
        };
        match row.get("scenario").and_then(Json::as_str) {
            Some(s) if s == f.scenario => {}
            Some(s) => bad.push(format!("{ctx}: baseline scenario is `{s}`")),
            None => bad.push(format!("{ctx}: baseline row lacks string `scenario`")),
        }
        check(&mut bad, exact_u64(row, "degraded_lost", f.degraded_lost));
        check(&mut bad, exact_u64(row, "faults", f.faults as u64));
        check(&mut bad, exact_u64(row, "retries", f.retries as u64));
        check(&mut bad, exact_u64(row, "replans", f.replans as u64));
        check(&mut bad, close_f64(row, "clean_makespan", f.clean_makespan, tol));
        check(&mut bad, close_f64(row, "degraded_makespan", f.degraded_makespan, tol));
        check(&mut bad, close_f64(row, "recovered_makespan", f.recovered_makespan, tol));
    }
    bad
}

/// Checks the committed **full** `BENCH_dp.json` for the D&C kernel's
/// contract: at [`DC_GATE_CASE`] the serial D&C solve must be at least
/// [`DC_GATE_MIN_SPEEDUP`]× faster than the serial Algorithm-2 engine.
///
/// Unlike [`check_dp`], this *does* read wall-clock fields — but from
/// the committed sweep (one machine, one run, both kernels timed
/// back-to-back), where the ratio is meaningful. CI does not re-run the
/// full-size sweep; it verifies the committed numbers still make the
/// claim the docs make.
pub fn check_dc_speedup(baseline: &Json) -> Vec<String> {
    let (n, p) = DC_GATE_CASE;
    let rows = match rows_of(baseline) {
        Ok(r) => r,
        Err(e) => return vec![format!("dc: {e}")],
    };
    let row = rows.iter().find(|r| {
        r.get("n").and_then(Json::as_u64) == Some(n as u64)
            && r.get("p").and_then(Json::as_u64) == Some(p as u64)
    });
    let Some(row) = row else {
        return vec![format!("dc: baseline has no row for n={n} p={p}")];
    };
    let mut bad = Vec::new();
    match (field_f64(row, "serial_secs"), field_f64(row, "dc_secs")) {
        (Ok(serial), Ok(dc)) => {
            let speedup = serial / dc.max(1e-12);
            if speedup < DC_GATE_MIN_SPEEDUP {
                bad.push(format!(
                    "dc: n={n} p={p} speedup {speedup:.2}x < required \
                     {DC_GATE_MIN_SPEEDUP}x (serial {serial:.4}s, dc {dc:.4}s)"
                ));
            }
        }
        (a, b) => {
            for e in [a.err(), b.err()].into_iter().flatten() {
                bad.push(format!("dc: n={n} p={p}: {e}"));
            }
        }
    }
    bad
}

/// Compares a fresh `serve_load --smoke` run against its baseline. Only
/// deterministic fields are compared: the request counts, the planned
/// makespan, and the cache invariants (`hit_only`, `consistent`,
/// `shed == 0`). Latency and throughput fields are machine-dependent
/// and left to [`check_serve_perf`].
pub fn check_serve(baseline: &Json, fresh: &ServeLoadReport, tol: f64) -> Vec<String> {
    let mut bad = Vec::new();
    let check = |bad: &mut Vec<String>, r: Result<(), String>| {
        if let Err(e) = r {
            bad.push(format!("serve: {e}"));
        }
    };
    check(&mut bad, exact_u64(baseline, "p", fresh.p as u64));
    check(&mut bad, exact_u64(baseline, "items", fresh.items));
    check(&mut bad, exact_u64(baseline, "cold_requests", fresh.cold_requests));
    check(&mut bad, exact_u64(baseline, "warm_requests", fresh.warm_requests));
    check(&mut bad, exact_u64(baseline, "shed", fresh.shed));
    check(&mut bad, close_f64(baseline, "makespan", fresh.makespan, tol));
    for (key, fresh_val) in [("hit_only", fresh.hit_only), ("consistent", fresh.consistent)] {
        match baseline.get(key).and_then(as_bool) {
            Some(b) if b == fresh_val => {}
            Some(b) => bad.push(format!("serve: {key} baseline {b} fresh {fresh_val}")),
            None => bad.push(format!("serve: baseline lacks boolean `{key}`")),
        }
        if !fresh_val {
            bad.push(format!("serve: `{key}` failed in the fresh run"));
        }
    }
    bad
}

/// Checks the committed **full** `BENCH_serve.json` for the daemon's
/// service-level contract: warm throughput ≥ [`SERVE_GATE_MIN_RPS`]
/// requests/sec and warm p50 < [`SERVE_GATE_MAX_P50`]. Like
/// [`check_dc_speedup`], this reads wall-clock numbers from the
/// committed document (one machine, one run) rather than re-running the
/// full-size load test in CI.
pub fn check_serve_perf(baseline: &Json) -> Vec<String> {
    let mut bad = Vec::new();
    match field_f64(baseline, "warm_throughput_rps") {
        Ok(rps) if rps < SERVE_GATE_MIN_RPS => bad.push(format!(
            "serve: committed warm throughput {rps:.0} req/s < required \
             {SERVE_GATE_MIN_RPS:.0} req/s"
        )),
        Ok(_) => {}
        Err(e) => bad.push(format!("serve: {e}")),
    }
    match field_f64(baseline, "warm_p50_secs") {
        Ok(p50) if p50 >= SERVE_GATE_MAX_P50 => bad.push(format!(
            "serve: committed warm p50 {p50:.6}s >= bound {SERVE_GATE_MAX_P50}s"
        )),
        Ok(_) => {}
        Err(e) => bad.push(format!("serve: {e}")),
    }
    bad
}

/// Compares a fresh `sim_scale --smoke` sweep against its baseline.
/// Only deterministic fields are compared: exact event counts and queue
/// peaks, makespans (tolerance — the baseline rounds), and the
/// engine-agreement booleans (`identical` per row, `pool_identical`
/// overall), which must also hold in the fresh run.
pub fn check_sim(baseline: &Json, fresh: &SimScaleReport, tol: f64) -> Vec<String> {
    let mut bad = Vec::new();
    let check = |bad: &mut Vec<String>, ctx: &str, r: Result<(), String>| {
        if let Err(e) = r {
            bad.push(format!("{ctx}: {e}"));
        }
    };
    check(&mut bad, "sim", exact_u64(baseline, "items_per_rank", fresh.items_per_rank));
    check(&mut bad, "sim", exact_u64(baseline, "pool_ranks", fresh.pool_ranks as u64));
    match baseline.get("pool_identical").and_then(as_bool) {
        Some(b) if b == fresh.pool_identical => {}
        Some(b) => {
            bad.push(format!("sim: pool_identical baseline {b} fresh {}", fresh.pool_identical))
        }
        None => bad.push("sim: baseline lacks boolean `pool_identical`".into()),
    }
    if !fresh.pool_identical {
        bad.push("sim: pooled execution diverged from the simulation in the fresh run".into());
    }
    let rows = match rows_of(baseline) {
        Ok(r) => r,
        Err(e) => {
            bad.push(format!("sim: {e}"));
            return bad;
        }
    };
    if rows.len() != fresh.rows.len() {
        bad.push(format!(
            "sim: baseline has {} row(s), fresh run has {}",
            rows.len(),
            fresh.rows.len()
        ));
        return bad;
    }
    for (row, f) in rows.iter().zip(&fresh.rows) {
        let ctx = format!("sim row p={}", f.p);
        check(&mut bad, &ctx, exact_u64(row, "p", f.p as u64));
        check(&mut bad, &ctx, exact_u64(row, "items", f.items));
        check(&mut bad, &ctx, exact_u64(row, "events", f.events));
        check(&mut bad, &ctx, exact_u64(row, "queue_peak", f.queue_peak as u64));
        check(&mut bad, &ctx, close_f64(row, "makespan", f.makespan, tol));
        match row.get("identical").and_then(as_bool) {
            Some(b) if b == f.identical => {}
            Some(b) => bad.push(format!("{ctx}: identical baseline {b} fresh {}", f.identical)),
            None => bad.push(format!("{ctx}: baseline row lacks boolean `identical`")),
        }
        if !f.identical {
            bad.push(format!("{ctx}: classic and fast engines diverged in the fresh run"));
        }
    }
    bad
}

/// Checks the committed **full** `BENCH_sim.json` for the fast path's
/// performance contract: among rows with `p >= `[`SIM_GATE_MIN_RANKS`]
/// where the classic engine was timed, the best events/sec speedup must
/// reach [`SIM_GATE_MIN_SPEEDUP`]x, and at least one such row must
/// exist. The gate reads the best row rather than every row because the
/// classic engine degrades with queue depth — at p = 10^4 it is merely
/// a few times slower, at p = 10^6 it is an order of magnitude slower —
/// and the contract is about what the fast path buys at headline scale.
/// Like [`check_dc_speedup`], this reads wall-clock numbers from the
/// committed document rather than re-running the full-size sweep in CI.
pub fn check_sim_perf(baseline: &Json) -> Vec<String> {
    let rows = match rows_of(baseline) {
        Ok(r) => r,
        Err(e) => return vec![format!("sim: {e}")],
    };
    let mut bad = Vec::new();
    let mut best: Option<(u64, f64)> = None;
    for row in rows {
        let p = row.get("p").and_then(Json::as_u64).unwrap_or(0);
        let classic = row.get("classic_secs").and_then(Json::as_f64).unwrap_or(0.0);
        if (p as usize) < SIM_GATE_MIN_RANKS || classic <= 0.0 {
            continue;
        }
        match field_f64(row, "fast_secs") {
            Ok(fast) => {
                let speedup = classic / fast.max(1e-12);
                if best.is_none_or(|(_, s)| speedup > s) {
                    best = Some((p, speedup));
                }
            }
            Err(e) => bad.push(format!("sim: p={p}: {e}")),
        }
    }
    match best {
        None => bad.push(format!(
            "sim: baseline has no classic-timed row with p >= {SIM_GATE_MIN_RANKS} to gate on"
        )),
        Some((p, speedup)) if speedup < SIM_GATE_MIN_SPEEDUP => bad.push(format!(
            "sim: best speedup {speedup:.2}x (at p={p}) < required {SIM_GATE_MIN_SPEEDUP}x"
        )),
        Some(_) => {}
    }
    bad
}

fn exact_u64(row: &Json, key: &str, fresh: u64) -> Result<(), String> {
    let b = field_u64(row, key)?;
    if b == fresh {
        Ok(())
    } else {
        Err(format!("{key} baseline {b} fresh {fresh}"))
    }
}

fn close_f64(row: &Json, key: &str, fresh: f64, tol: f64) -> Result<(), String> {
    let b = field_f64(row, key)?;
    if rel_close(fresh, b, tol) {
        Ok(())
    } else {
        Err(format!(
            "{key} baseline {b} fresh {fresh} (rel {:.2e} > tol {tol:.0e})",
            (fresh - b).abs() / b.abs().max(1e-12)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::faultexp::fault_sweep_json;
    use crate::experiments::runtimes::dp_perf_json;
    use gs_scatter::obs::json::parse;

    fn dp_row() -> DpPerfRow {
        DpPerfRow {
            n: 2_000,
            p: 4,
            serial_secs: 0.01,
            parallel_secs: 0.02,
            pruned_secs: 0.005,
            parallel_pruned_secs: 0.006,
            dc_secs: 0.003,
            identical: true,
            makespan: 3.1640625, // dyadic: prints and reparses exactly
        }
    }

    fn fault_row() -> FaultSweepRow {
        FaultSweepRow {
            scenario: "crash:0@0.5".into(),
            clean_makespan: 1.5,
            degraded_makespan: 1.5,
            degraded_lost: 123,
            recovered_makespan: 2.25,
            overhead_pct: 50.0,
            faults: 3,
            retries: 2,
            replans: 1,
        }
    }

    #[test]
    fn identical_runs_pass_both_gates() {
        let dp = vec![dp_row()];
        let baseline = parse(&dp_perf_json(&dp, 4)).unwrap();
        assert!(check_dp(&baseline, &dp, 1e-4).is_empty());
        let faults = vec![fault_row()];
        // Replan timing fields are extra top-level keys the gate ignores.
        let baseline = parse(&fault_sweep_json(2_000, &faults, Some((0.5, 0.1)))).unwrap();
        assert!(check_faults(&baseline, &faults, 1e-4).is_empty());
    }

    #[test]
    fn timing_changes_do_not_trip_the_gate() {
        let mut fresh = vec![dp_row()];
        let baseline = parse(&dp_perf_json(&fresh, 4)).unwrap();
        fresh[0].serial_secs *= 100.0; // a slower machine is not a regression
        fresh[0].parallel_secs *= 0.01;
        assert!(check_dp(&baseline, &fresh, 1e-4).is_empty());
    }

    #[test]
    fn makespan_drift_and_divergence_are_caught() {
        let base_rows = vec![dp_row()];
        let baseline = parse(&dp_perf_json(&base_rows, 4)).unwrap();
        let mut fresh = base_rows.clone();
        fresh[0].makespan *= 1.001;
        let bad = check_dp(&baseline, &fresh, 1e-4);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("makespan"), "{bad:?}");
        let mut fresh = base_rows;
        fresh[0].identical = false;
        assert!(!check_dp(&baseline, &fresh, 1e-4).is_empty());
    }

    #[test]
    fn incident_count_changes_are_caught() {
        let base_rows = vec![fault_row()];
        let baseline = parse(&fault_sweep_json(2_000, &base_rows, None)).unwrap();
        let mut fresh = base_rows.clone();
        fresh[0].degraded_lost += 1;
        fresh[0].retries += 1;
        let bad = check_faults(&baseline, &fresh, 1e-4);
        assert_eq!(bad.len(), 2, "{bad:?}");
        // Row-count mismatches are reported, not ignored.
        let bad = check_faults(&baseline, &[], 1e-4);
        assert!(bad[0].contains("0"), "{bad:?}");
    }

    #[test]
    fn dc_speedup_gate_reads_the_full_baseline() {
        let (n, p) = DC_GATE_CASE;
        let mut fast = dp_row();
        fast.n = n;
        fast.p = p;
        fast.serial_secs = 9.0;
        fast.dc_secs = 1.0;
        let ok = parse(&dp_perf_json(&[fast.clone()], 4)).unwrap();
        assert!(check_dc_speedup(&ok).is_empty());
        let mut slow = fast.clone();
        slow.dc_secs = 5.0; // 1.8x — below the 3x contract
        let bad = parse(&dp_perf_json(&[slow], 4)).unwrap();
        let msgs = check_dc_speedup(&bad);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("speedup"), "{msgs:?}");
        // A baseline without the gate's row fails loudly.
        let other = parse(&dp_perf_json(&[dp_row()], 4)).unwrap();
        assert!(!check_dc_speedup(&other).is_empty());
    }

    fn serve_report() -> ServeLoadReport {
        ServeLoadReport {
            p: 13,
            items: 817_101,
            clients: 8,
            cold_requests: 32,
            warm_requests: 50_000,
            makespan: 2.5,
            hit_only: true,
            consistent: true,
            shed: 0,
            cold_p50_secs: 2e-4,
            cold_p95_secs: 4e-4,
            cold_p99_secs: 5e-4,
            warm_p50_secs: 1e-4,
            warm_p95_secs: 2e-4,
            warm_p99_secs: 3e-4,
            warm_throughput_rps: 42_000.0,
            warm_wall_secs: 1.19,
        }
    }

    #[test]
    fn serve_smoke_gate_compares_deterministic_fields_only() {
        use crate::experiments::serveexp::serve_load_json;
        let fresh = serve_report();
        let baseline = parse(&serve_load_json(&fresh)).unwrap();
        assert!(check_serve(&baseline, &fresh, 1e-4).is_empty());
        // Timing changes never trip the smoke gate.
        let mut slower = fresh.clone();
        slower.warm_p50_secs *= 100.0;
        slower.warm_throughput_rps /= 100.0;
        assert!(check_serve(&baseline, &slower, 1e-4).is_empty());
        // Cache-invariant regressions do.
        let mut broken = fresh.clone();
        broken.hit_only = false;
        broken.shed = 3;
        let bad = check_serve(&baseline, &broken, 1e-4);
        assert!(bad.iter().any(|m| m.contains("hit_only")), "{bad:?}");
        assert!(bad.iter().any(|m| m.contains("shed")), "{bad:?}");
        // So does makespan drift.
        let mut drift = fresh;
        drift.makespan *= 1.001;
        assert!(!check_serve(&baseline, &drift, 1e-4).is_empty());
    }

    #[test]
    fn serve_perf_gate_reads_the_full_baseline() {
        use crate::experiments::serveexp::serve_load_json;
        let good = parse(&serve_load_json(&serve_report())).unwrap();
        assert!(check_serve_perf(&good).is_empty());
        let mut slow = serve_report();
        slow.warm_throughput_rps = 900.0;
        slow.warm_p50_secs = 0.05;
        let msgs = check_serve_perf(&parse(&serve_load_json(&slow)).unwrap());
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        // A baseline missing the fields fails loudly.
        let empty = parse("{\"bench\": \"serve_load\"}").unwrap();
        assert!(!check_serve_perf(&empty).is_empty());
    }

    fn sim_report() -> SimScaleReport {
        use crate::experiments::simexp::SimScaleRow;
        SimScaleReport {
            items_per_rank: 10,
            rows: vec![SimScaleRow {
                p: 10_000,
                items: 100_000,
                events: 40_000,
                queue_peak: 321,
                makespan: 1.5,
                identical: true,
                classic_secs: 2.0,
                fast_secs: 0.1,
                classic_events_per_sec: 20_000.0,
                fast_events_per_sec: 400_000.0,
                speedup: 20.0,
                peak_rss_bytes: 123_456_789,
            }],
            pool_ranks: 1_000,
            pool_threads: 4,
            pool_identical: true,
            pool_secs: 0.5,
        }
    }

    #[test]
    fn sim_smoke_gate_compares_deterministic_fields_only() {
        use crate::experiments::simexp::sim_scale_json;
        let fresh = sim_report();
        let baseline = parse(&sim_scale_json(&fresh)).unwrap();
        assert!(check_sim(&baseline, &fresh, 1e-4).is_empty());
        // Timing changes never trip the smoke gate.
        let mut slower = fresh.clone();
        slower.rows[0].classic_secs *= 100.0;
        slower.rows[0].fast_secs *= 100.0;
        slower.rows[0].speedup = 1.0;
        slower.rows[0].peak_rss_bytes *= 10;
        slower.pool_secs *= 50.0;
        assert!(check_sim(&baseline, &slower, 1e-4).is_empty());
        // Event-count and agreement regressions do.
        let mut broken = fresh.clone();
        broken.rows[0].events += 1;
        broken.rows[0].identical = false;
        broken.pool_identical = false;
        let bad = check_sim(&baseline, &broken, 1e-4);
        assert!(bad.iter().any(|m| m.contains("events")), "{bad:?}");
        assert!(bad.iter().any(|m| m.contains("diverged")), "{bad:?}");
        assert!(bad.iter().any(|m| m.contains("pool_identical")), "{bad:?}");
        // So does makespan drift.
        let mut drift = fresh;
        drift.rows[0].makespan *= 1.001;
        assert!(!check_sim(&baseline, &drift, 1e-4).is_empty());
    }

    #[test]
    fn sim_perf_gate_reads_the_full_baseline() {
        use crate::experiments::simexp::sim_scale_json;
        let good = parse(&sim_scale_json(&sim_report())).unwrap();
        assert!(check_sim_perf(&good).is_empty());
        // Below the 10x contract on every eligible row: caught.
        let mut slow = sim_report();
        slow.rows[0].fast_secs = 1.0; // 2x
        let msgs = check_sim_perf(&parse(&sim_scale_json(&slow)).unwrap());
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("best speedup"), "{msgs:?}");
        // The contract is on the *best* eligible row: a modest speedup
        // at p=10^4 is fine as long as the deep-queue row clears 10x.
        let mut mixed = sim_report();
        let mut deep = mixed.rows[0].clone();
        mixed.rows[0].fast_secs = 0.5; // 4x at p=10^4
        deep.p = 1_000_000;
        deep.classic_secs = 1.0;
        deep.fast_secs = 0.069; // ~14x at p=10^6
        mixed.rows.push(deep);
        assert!(check_sim_perf(&parse(&sim_scale_json(&mixed)).unwrap()).is_empty());
        // Small-p rows are exempt, but a baseline with *only* exempt
        // rows fails loudly.
        let mut tiny = sim_report();
        tiny.rows[0].p = 500;
        tiny.rows[0].fast_secs = 1.0;
        let msgs = check_sim_perf(&parse(&sim_scale_json(&tiny)).unwrap());
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("no classic-timed row"), "{msgs:?}");
    }

    #[test]
    fn malformed_baselines_fail_loudly() {
        let garbage = parse("{\"bench\": \"dp_perf\"}").unwrap();
        assert!(!check_dp(&garbage, &[dp_row()], 1e-4).is_empty());
        let no_field = parse("{\"rows\": [{\"n\": 2000}]}").unwrap();
        let bad = check_dp(&no_field, &[dp_row()], 1e-4);
        assert!(bad.iter().any(|m| m.contains("lacks")), "{bad:?}");
    }
}
