//! # gs-bench — the experiment harness
//!
//! One module (and one binary) per table/figure of the paper, plus the
//! ablations DESIGN.md calls out. Every experiment is a library function
//! returning a typed summary — the binaries print, the integration tests
//! assert the *shapes* the paper reports (who wins, by what factor, where
//! the crossovers are).
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 (testbed) |
//! | `fig1_stair` | Fig. 1 (stair effect) |
//! | `fig2_uniform` | Fig. 2 (uniform distribution) |
//! | `fig3_balanced` | Fig. 3 (balanced, descending bandwidth) |
//! | `fig4_ascending` | Fig. 4 (balanced, ascending bandwidth) |
//! | `algo_runtimes` | §5.2 "2 days / 6 minutes / instantaneous" |
//! | `heuristic_error` | §5.2 "relative error < 6·10⁻⁶" |
//! | `ordering_study` | §4.3/§4.4 ordering-policy ablation |
//! | `root_selection` | §3.4 root choice |
//! | `strategy_ablation` | exact vs heuristic vs closed-form vs uniform |
//! | `tomo_e2e` | §2.2 application end-to-end on the emulated grid |
//! | `serve_load` | planning-daemon throughput/latency (docs/serve.md) |
//! | `bench_gate` | CI regression gate vs committed smoke baselines |
//! | `run_all` | everything above, in sequence |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod gate;
pub mod util;
