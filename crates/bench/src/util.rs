//! Small shared helpers for the experiment binaries.

/// Parses `--rays N` / `--seed N`-style `u64` flags from `std::env::args`,
/// falling back to `default`.
pub fn arg_u64(flag: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == flag {
            return w[1]
                .parse()
                .unwrap_or_else(|_| panic!("{flag} expects an integer, got {}", w[1]));
        }
    }
    default
}

/// `usize` variant of [`arg_u64`].
pub fn arg_usize(flag: &str, default: usize) -> usize {
    arg_u64(flag, default as u64) as usize
}

/// Parses an `f64` flag (`--tolerance R`), falling back to `default`.
pub fn arg_f64(flag: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == flag {
            return w[1]
                .parse()
                .unwrap_or_else(|_| panic!("{flag} expects a number, got {}", w[1]));
        }
    }
    default
}

/// Parses a string-valued flag (`--json PATH`), falling back to `default`.
pub fn arg_str(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == flag {
            return w[1].clone();
        }
    }
    default.to_string()
}

/// `true` iff a bare boolean flag (`--smoke`) is present.
pub fn arg_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} {}", "=".repeat(66usize.saturating_sub(title.len())));
}

/// Formats seconds compactly (`1.23 s`, `45 ms`, `6.7 µs`).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Relative difference `(a - b) / b`.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b) / b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0042), "4.20 ms");
        assert_eq!(fmt_secs(3.1e-6), "3.10 µs");
        assert_eq!(fmt_secs(5e-8), "50 ns");
    }

    #[test]
    fn rel_diff_signs() {
        assert_eq!(rel_diff(11.0, 10.0), 0.1);
        assert_eq!(rel_diff(9.0, 10.0), -0.1);
    }

    #[test]
    fn arg_defaults_without_flag() {
        assert_eq!(arg_u64("--definitely-not-passed", 7), 7);
        assert_eq!(arg_usize("--nope", 9), 9);
    }
}
