//! Million-rank simulation capacity sweep (`sim_scale` binary): times
//! the classic engine — the seed's binary heap of boxed closures,
//! migration pinned off — against the calendar-queue fast path
//! ([`gs_gridsim::simulate_star`]) on the deterministic synthetic star
//! of docs/simulation.md, then executes one plan on the pooled
//! gs-minimpi runtime and diffs the virtual clocks bit-for-bit.
//!
//! Deterministic fields (event counts, queue peaks, makespans, the
//! classic/fast and simulated/executed agreement booleans) feed the
//! `bench_gate` smoke baseline (`BENCH_sim.smoke.json`); wall-clock
//! fields (seconds, events/sec, speedup, peak RSS) are recorded in the
//! committed full `BENCH_sim.json`, where `check_sim_perf` holds the
//! fast path to its >= 10x events/sec contract at p >= 10^4.

use std::time::Instant;

use gs_gridsim::sim::{simulate_scatter_on, SimConfig};
use gs_gridsim::{proportional_counts, simulate_star, synthetic_star, Engine};
use gs_minimpi::{run_world_pooled, TimeModel, WorldConfig};
use gs_scatter::cost::{CostFn, Processor};
use gs_scatter::obs::json::Json;

/// Sizing knobs for one capacity sweep.
#[derive(Debug, Clone)]
pub struct SimScaleConfig {
    /// Rank counts to sweep (root included).
    pub ps: Vec<usize>,
    /// Scattered items per rank (total items = `p * items_per_rank`).
    pub items_per_rank: u64,
    /// Largest `p` the classic engine is timed at (the fast path runs
    /// at every `p`; cap the classic baseline when sweep wall-time
    /// matters more than baseline coverage).
    pub classic_max_ranks: usize,
    /// World size of the pooled-execution check (`0` = skip).
    pub pool_ranks: usize,
    /// Worker threads of the pooled-execution check.
    pub pool_threads: usize,
}

impl SimScaleConfig {
    /// The full-size sweep behind the committed `BENCH_sim.json`:
    /// 10^3..10^7 ranks, classic baseline at every size, pooled
    /// execution of the 10^4-rank plan. The 10^7 row is where the 10x
    /// fast-path contract is measured: the classic engine's
    /// working set (boxed closures, `Rc` state, named processors, the
    /// recorded trace) is gigabytes there and every event misses cache,
    /// while the fast path stays flat at ~18 ns/event.
    pub fn full() -> SimScaleConfig {
        SimScaleConfig {
            ps: vec![1_000, 10_000, 100_000, 1_000_000, 10_000_000],
            items_per_rank: 10,
            classic_max_ranks: 10_000_000,
            pool_ranks: 10_000,
            pool_threads: 8,
        }
    }

    /// The CI-sized run behind `BENCH_sim.smoke.json`.
    pub fn smoke() -> SimScaleConfig {
        SimScaleConfig {
            ps: vec![1_000, 10_000],
            items_per_rank: 10,
            classic_max_ranks: 10_000,
            pool_ranks: 1_000,
            pool_threads: 4,
        }
    }
}

/// One `p` point of the sweep. Wall-clock fields are machine-dependent;
/// everything else is deterministic.
#[derive(Debug, Clone)]
pub struct SimScaleRow {
    /// Ranks simulated (root included).
    pub p: usize,
    /// Items scattered.
    pub items: u64,
    /// Simulator events processed (4 per rank).
    pub events: u64,
    /// Peak pending events in the calendar queue.
    pub queue_peak: usize,
    /// Simulated makespan, seconds of virtual time.
    pub makespan: f64,
    /// Classic engine agreed with the fast path bit-for-bit (`true`
    /// whenever the classic engine ran, i.e. `classic_secs > 0`).
    pub identical: bool,
    /// Classic engine (seed binary heap of boxed closures, migration
    /// pinned off) wall seconds (0 = not run at this p).
    pub classic_secs: f64,
    /// Calendar-queue fast-path wall seconds.
    pub fast_secs: f64,
    /// Classic engine throughput, events per wall second (0 = not run).
    pub classic_events_per_sec: f64,
    /// Fast-path throughput, events per wall second.
    pub fast_events_per_sec: f64,
    /// `classic_secs / fast_secs` (0 = classic not run).
    pub speedup: f64,
    /// Process peak RSS (`VmHWM`) right after this row's fast-path run
    /// (before the classic baseline, whose Rc cells would mask it),
    /// bytes; 0 when `/proc/self/status` is unavailable. Monotone
    /// across rows.
    pub peak_rss_bytes: u64,
}

/// A full sweep's results.
#[derive(Debug, Clone)]
pub struct SimScaleReport {
    /// Items per rank of every row.
    pub items_per_rank: u64,
    /// One row per swept `p`.
    pub rows: Vec<SimScaleRow>,
    /// World size of the pooled-execution check (0 = skipped).
    pub pool_ranks: usize,
    /// Worker threads of the pooled-execution check.
    pub pool_threads: usize,
    /// Pooled virtual clocks matched the simulated finish times
    /// bit-for-bit.
    pub pool_identical: bool,
    /// Pooled execution wall seconds.
    pub pool_secs: f64,
}

/// Reads the process peak RSS (`VmHWM`) in bytes, 0 when unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Measures one sweep point: fast path always, classic engine when
/// `classic` is set. Timings are sensitive to allocator state left by
/// earlier large runs in the same process — the `sim_scale` binary
/// therefore measures each full-size row in a fresh subprocess (see
/// [`sim_row_json`]); in-process sweeps ([`sim_scale`]) are for
/// CI-sized smoke runs where only deterministic fields matter.
pub fn sim_scale_row(p: usize, items_per_rank: u64, classic: bool) -> SimScaleRow {
    let items = p as u64 * items_per_rank;
    let (beta, alpha) = synthetic_star(p);
    let counts = proportional_counts(&alpha, items);
    let comm: Vec<f64> = beta.iter().zip(&counts).map(|(b, &c)| b * c as f64).collect();
    let work: Vec<f64> = alpha.iter().zip(&counts).map(|(a, &c)| a * c as f64).collect();

    let t = Instant::now();
    let fast = simulate_star(&comm, &work, false);
    let fast_secs = t.elapsed().as_secs_f64();
    // Snapshot before the classic run: VmHWM is a process-wide high
    // water mark, and the classic engine's Rc cells and name strings
    // would otherwise mask the fast path's footprint.
    let rss = peak_rss_bytes();

    let (classic_secs, identical) = if classic {
        let procs: Vec<Processor> = beta
            .iter()
            .zip(&alpha)
            .enumerate()
            .map(|(i, (&b, &a))| Processor::linear(format!("w{i}"), b, a))
            .collect();
        let view: Vec<&Processor> = procs.iter().collect();
        let counts_usize: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
        // Pin the heap so the baseline is the seed engine's data
        // path, not the auto-migrating one this sweep exists to
        // justify.
        let t = Instant::now();
        let classic =
            simulate_scatter_on(&view, &counts_usize, &SimConfig::ideal(), Engine::with_heap_pinned());
        let secs = t.elapsed().as_secs_f64();
        let same = classic.makespan.to_bits() == fast.makespan.to_bits()
            && classic.timeline == fast.timeline;
        (secs, same)
    } else {
        (0.0, true)
    };

    let events = fast.events_processed;
    let per_sec = |secs: f64| {
        if secs > 0.0 { events as f64 / secs } else { 0.0 }
    };
    SimScaleRow {
        p,
        items,
        events,
        queue_peak: fast.queue_peak,
        makespan: fast.makespan,
        identical,
        classic_secs,
        fast_secs,
        classic_events_per_sec: per_sec(classic_secs),
        fast_events_per_sec: per_sec(fast_secs),
        speedup: if classic_secs > 0.0 { classic_secs / fast_secs.max(1e-12) } else { 0.0 },
        peak_rss_bytes: rss,
    }
}

/// Runs the capacity sweep in-process.
pub fn sim_scale(cfg: &SimScaleConfig) -> SimScaleReport {
    let mut rows = Vec::with_capacity(cfg.ps.len());
    for &p in &cfg.ps {
        rows.push(sim_scale_row(p, cfg.items_per_rank, p <= cfg.classic_max_ranks));
    }

    let (pool_identical, pool_secs) = if cfg.pool_ranks > 0 {
        pooled_check(cfg.pool_ranks, cfg.pool_threads, cfg.items_per_rank)
    } else {
        (true, 0.0)
    };
    SimScaleReport {
        items_per_rank: cfg.items_per_rank,
        rows,
        pool_ranks: cfg.pool_ranks,
        pool_threads: cfg.pool_threads,
        pool_identical,
        pool_secs,
    }
}

/// Executes the synthetic-star plan at `p` ranks on the pooled runtime
/// and compares every rank's virtual clock against the simulated finish
/// time. Returns `(bit_identical, wall_secs)`.
fn pooled_check(p: usize, threads: usize, items_per_rank: u64) -> (bool, f64) {
    let items = p as u64 * items_per_rank;
    let (beta, alpha) = synthetic_star(p);
    let counts = proportional_counts(&alpha, items);
    let comm: Vec<f64> = beta.iter().zip(&counts).map(|(b, &c)| b * c as f64).collect();
    let work: Vec<f64> = alpha.iter().zip(&counts).map(|(a, &c)| a * c as f64).collect();
    let sim = simulate_star(&comm, &work, false);

    // One item = one byte (u8 payloads), so the per-byte link slopes are
    // exactly the per-item betas and the executed clocks reproduce the
    // simulation bit for bit (docs/simulation.md).
    let model = TimeModel {
        link: beta.iter().map(|&b| CostFn::Linear { slope: b }).collect(),
        compute: alpha.iter().map(|&a| CostFn::Linear { slope: a }).collect(),
    };
    let counts_usize: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
    let root = p - 1;
    let data: Vec<u8> = vec![0u8; items as usize];
    let t = Instant::now();
    let clocks = run_world_pooled(p, threads, root, WorldConfig::with_time(model), |comm| {
        let sendbuf = if comm.rank() == root { Some(&data[..]) } else { None };
        let mine = comm.scatterv(root, sendbuf, &counts_usize);
        comm.model_compute(mine.len());
        comm.now()
    });
    let secs = t.elapsed().as_secs_f64();
    let identical = clocks.len() == sim.timeline.finish.len()
        && clocks.iter().zip(&sim.timeline.finish).all(|(c, f)| c.to_bits() == f.to_bits());
    (identical, secs)
}

/// Renders a report as the `BENCH_sim[.smoke].json` document.
pub fn sim_scale_json(r: &SimScaleReport) -> String {
    let mut out = String::from("{\n  \"bench\": \"sim_scale\",\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"items_per_rank\": {},\n", r.items_per_rank));
    out.push_str(&format!(
        "  \"pool_ranks\": {},\n  \"pool_threads\": {},\n  \"pool_identical\": {},\n  \
         \"pool_secs\": {:.3},\n",
        r.pool_ranks, r.pool_threads, r.pool_identical, r.pool_secs
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in r.rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&sim_row_json(row));
        out.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders one row as a single-line JSON object — the element format of
/// `sim_scale_json` and the wire format the `sim_scale` binary uses to
/// report a row measured in a fresh subprocess.
pub fn sim_row_json(row: &SimScaleRow) -> String {
    format!(
        "{{\"p\": {}, \"items\": {}, \"events\": {}, \"queue_peak\": {}, \
         \"makespan\": {:.9}, \"identical\": {}, \"classic_secs\": {:.4}, \
         \"fast_secs\": {:.4}, \"classic_events_per_sec\": {:.0}, \
         \"fast_events_per_sec\": {:.0}, \"speedup\": {:.2}, \"peak_rss_bytes\": {}}}",
        row.p,
        row.items,
        row.events,
        row.queue_peak,
        row.makespan,
        row.identical,
        row.classic_secs,
        row.fast_secs,
        row.classic_events_per_sec,
        row.fast_events_per_sec,
        row.speedup,
        row.peak_rss_bytes,
    )
}

/// Parses a [`sim_row_json`] line back into a row.
pub fn sim_row_from_json(text: &str) -> Result<SimScaleRow, String> {
    let doc = gs_scatter::obs::json::parse(text).map_err(|e| format!("row json: {e:?}"))?;
    let u = |k: &str| doc.get(k).and_then(Json::as_u64).ok_or_else(|| format!("row lacks `{k}`"));
    let f = |k: &str| doc.get(k).and_then(Json::as_f64).ok_or_else(|| format!("row lacks `{k}`"));
    let identical = match doc.get("identical") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("row lacks boolean `identical`".into()),
    };
    Ok(SimScaleRow {
        p: u("p")? as usize,
        items: u("items")?,
        events: u("events")?,
        queue_peak: u("queue_peak")? as usize,
        makespan: f("makespan")?,
        identical,
        classic_secs: f("classic_secs")?,
        fast_secs: f("fast_secs")?,
        classic_events_per_sec: f("classic_events_per_sec")?,
        fast_events_per_sec: f("fast_events_per_sec")?,
        speedup: f("speedup")?,
        peak_rss_bytes: u("peak_rss_bytes")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimScaleConfig {
        SimScaleConfig {
            ps: vec![50, 500],
            items_per_rank: 10,
            classic_max_ranks: 500,
            pool_ranks: 50,
            pool_threads: 4,
        }
    }

    #[test]
    fn sweep_rows_are_identical_and_deterministic() {
        let a = sim_scale(&tiny());
        let b = sim_scale(&tiny());
        assert_eq!(a.rows.len(), 2);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert!(ra.identical, "classic and fast engines diverged at p={}", ra.p);
            assert_eq!(ra.events, 4 * ra.p as u64);
            assert_eq!(ra.makespan.to_bits(), rb.makespan.to_bits());
            assert_eq!(ra.queue_peak, rb.queue_peak);
            assert!(ra.fast_secs > 0.0);
            assert!(ra.classic_secs > 0.0);
        }
        assert!(a.pool_identical, "pooled execution diverged from the simulation");
        assert!(a.pool_secs > 0.0);
    }

    #[test]
    fn classic_engine_skips_past_its_cap() {
        let mut cfg = tiny();
        cfg.classic_max_ranks = 100;
        cfg.pool_ranks = 0;
        let r = sim_scale(&cfg);
        assert!(r.rows[0].classic_secs > 0.0);
        assert_eq!(r.rows[1].classic_secs, 0.0);
        assert_eq!(r.rows[1].speedup, 0.0);
        assert!(r.rows[1].identical, "skipped rows default to agreeing");
        assert_eq!(r.pool_secs, 0.0);
    }

    #[test]
    fn report_json_parses_back() {
        let r = sim_scale(&SimScaleConfig {
            ps: vec![50],
            items_per_rank: 10,
            classic_max_ranks: 50,
            pool_ranks: 0,
            pool_threads: 1,
        });
        let doc = gs_scatter::obs::json::parse(&sim_scale_json(&r)).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("sim_scale"));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("events").unwrap().as_u64(), Some(200));
    }

    #[test]
    fn row_json_round_trips() {
        let row = sim_scale_row(50, 10, true);
        let back = sim_row_from_json(&sim_row_json(&row)).unwrap();
        assert_eq!(back.p, row.p);
        assert_eq!(back.events, row.events);
        assert_eq!(back.queue_peak, row.queue_peak);
        assert_eq!(back.identical, row.identical);
        assert_eq!(back.peak_rss_bytes, row.peak_rss_bytes);
        assert!((back.makespan - row.makespan).abs() < 1e-9);
        assert!(sim_row_from_json("{\"p\": 1}").is_err());
    }

    #[test]
    fn rss_reader_reports_something_on_linux() {
        // On Linux VmHWM is always present; elsewhere the reader must
        // degrade to 0 rather than panic.
        let _ = peak_rss_bytes();
    }
}
