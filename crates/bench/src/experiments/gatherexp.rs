//! Extension ablation: what the forward-only model (the paper's) loses
//! when results must travel back — and what the gather-aware LP recovers.
//!
//! The result-return cost is swept as a fraction of the forward transfer
//! cost (`γ_i = ratio · β_i`). At ratio 0 both planners coincide; as the
//! return path grows, the forward-only plan over-commits remote machines.

use gs_scatter::gather::{
    gather_aware_distribution, makespan_with_gather, GatherProcessor,
};
use gs_scatter::heuristic::heuristic_distribution;
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::paper::table1_platform;

/// Results at one return-cost ratio.
#[derive(Debug, Clone)]
pub struct GatherRow {
    /// `γ / β` ratio.
    pub ratio: f64,
    /// Completion (incl. gather) of the paper's forward-only plan.
    pub forward_only: f64,
    /// Completion of the gather-aware plan.
    pub gather_aware: f64,
    /// `forward_only / gather_aware` — the value of modelling the gather.
    pub improvement: f64,
}

/// Sweeps the return-cost ratio on the Table-1 platform.
pub fn gather_ablation(n: usize, ratios: &[f64]) -> Vec<GatherRow> {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);

    ratios
        .iter()
        .map(|&ratio| {
            let gprocs: Vec<GatherProcessor> = view
                .iter()
                .map(|p| {
                    let beta = p.comm.linear_slope().unwrap_or(0.0);
                    GatherProcessor::with_linear_back((*p).clone(), beta * ratio)
                })
                .collect();
            let gview: Vec<&GatherProcessor> = gprocs.iter().collect();

            // The paper's plan, evaluated under the full model.
            let fwd = heuristic_distribution(&view, n).unwrap();
            let forward_only = makespan_with_gather(&gview, &fwd.counts);

            // The gather-aware plan.
            let aware = gather_aware_distribution(&gview, n).unwrap();

            GatherRow {
                ratio,
                forward_only,
                gather_aware: aware.makespan,
                improvement: forward_only / aware.makespan,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ratio_ties() {
        let rows = gather_ablation(20_000, &[0.0]);
        assert!((rows[0].improvement - 1.0).abs() < 1e-6, "{rows:?}");
    }

    #[test]
    fn aware_never_loses() {
        for r in gather_ablation(20_000, &[0.0, 1.0, 10.0, 100.0]) {
            assert!(
                r.improvement >= 1.0 - 1e-6,
                "gather-aware must not lose: {r:?}"
            );
        }
    }

    #[test]
    fn heavy_return_paths_reward_awareness() {
        // Once results are as big as inputs times 100 (e.g. full waveform
        // outputs), the forward-only plan leaves real time on the table.
        let rows = gather_ablation(20_000, &[100.0]);
        assert!(rows[0].improvement > 1.005, "{rows:?}");
    }
}
