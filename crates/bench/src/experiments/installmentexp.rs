//! Multi-installment ablation: how much does splitting each share into k
//! pieces (divisible-load style) improve the Table-1 schedule?

use gs_gridsim::installments::{simulate_installments, split_installments};
use gs_scatter::ordering::OrderPolicy;
use gs_scatter::paper::table1_platform;
use gs_scatter::planner::{Planner, Strategy};

/// Results at one installment count.
#[derive(Debug, Clone)]
pub struct InstallmentRow {
    /// Installments per processor.
    pub k: usize,
    /// Resulting makespan.
    pub makespan: f64,
    /// Mean first-arrival time (how early compute starts on average).
    pub mean_first_arrival: f64,
}

/// Sweeps the installment count on the balanced Table-1 plan.
pub fn installment_ablation(n: usize, ks: &[usize]) -> Vec<InstallmentRow> {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .order_policy(OrderPolicy::DescendingBandwidth)
        .plan(n)
        .unwrap();
    let view = platform.ordered(&plan.order);
    let counts = plan.counts_in_order();
    ks.iter()
        .map(|&k| {
            let run = simulate_installments(&view, &split_installments(&counts, k));
            let mean_first_arrival =
                run.first_arrival.iter().sum::<f64>() / run.first_arrival.len() as f64;
            InstallmentRow { k, makespan: run.makespan, mean_first_arrival }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_matches_planner_prediction() {
        let platform = table1_platform();
        let plan = Planner::new(platform).strategy(Strategy::Heuristic).plan(100_000).unwrap();
        let rows = installment_ablation(100_000, &[1]);
        assert!((rows[0].makespan - plan.predicted_makespan).abs() < 1e-6);
    }

    #[test]
    fn installments_barely_help_on_table1() {
        // comm << comp on Table 1: the paper's one-round scatter leaves
        // almost nothing on the table.
        let rows = installment_ablation(100_000, &[1, 4]);
        let gain = (rows[0].makespan - rows[1].makespan) / rows[0].makespan;
        assert!(gain.abs() < 0.02, "gain {gain} should be tiny on Table 1");
    }

    #[test]
    fn first_arrivals_shrink_with_k() {
        let rows = installment_ablation(100_000, &[1, 8]);
        assert!(rows[1].mean_first_arrival < rows[0].mean_first_arrival);
    }
}
