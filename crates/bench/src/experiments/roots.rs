//! Root-selection experiment (§3.4) on the Table-1 grid.
//!
//! The data set lives on `dinadan` (the paper's setup). Moving it to
//! another candidate root costs `n · β_candidate` seconds over that
//! candidate's link; the §3.4 rule weighs this against the balanced
//! makespan achievable with the candidate as root.

use gs_scatter::ordering::OrderPolicy;
use gs_scatter::paper::{table1_platform, table1_rows};
use gs_scatter::planner::Strategy;
use gs_scatter::root::{select_root, RootChoice};

/// Runs root selection for `n` items with the data initially on
/// `dinadan`.
pub fn root_selection(n: usize) -> RootChoice {
    let platform = table1_platform();
    // Transfer cost from dinadan to candidate r: the data crosses r's
    // link once (β is measured from dinadan, the data host).
    let transfer: Vec<f64> = table1_rows().iter().map(|r| r.beta * n as f64).collect();
    select_root(
        &platform,
        &transfer,
        n,
        Strategy::Heuristic,
        OrderPolicy::DescendingBandwidth,
    )
    .expect("Table-1 platform plans cleanly")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_all_sixteen_candidates() {
        let choice = root_selection(20_000);
        assert_eq!(choice.candidates.len(), 16);
    }

    #[test]
    fn totals_are_transfer_plus_makespan() {
        let choice = root_selection(10_000);
        for c in &choice.candidates {
            assert!((c.total - (c.transfer + c.makespan)).abs() < 1e-9);
        }
    }

    #[test]
    fn winner_minimizes_total() {
        let choice = root_selection(10_000);
        let min = choice
            .candidates
            .iter()
            .map(|c| c.total)
            .fold(f64::INFINITY, f64::min);
        assert!((choice.total_time - min).abs() < 1e-9);
    }

    #[test]
    fn dinadan_pays_no_transfer() {
        let choice = root_selection(50_000);
        assert_eq!(choice.candidates[0].transfer, 0.0, "data host is candidate 0");
        // merlin's transfer is the most expensive per item.
        let merlin = &choice.candidates[4];
        assert!(merlin.transfer > choice.candidates[1].transfer);
    }
}
