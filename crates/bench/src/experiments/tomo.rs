//! End-to-end reproduction of the §2.2 application on the emulated grid:
//! uniform scatter (the original program) vs the balanced scatterv, real
//! ray tracing, virtual-time schedule.

use gs_scatter::ordering::OrderPolicy;
use gs_scatter::paper::table1_platform;
use gs_scatter::planner::Strategy;
use gs_seismic::{run_tomography, TomoConfig, TomoReport};

/// Uniform-vs-balanced end-to-end comparison.
#[derive(Debug)]
pub struct TomoComparison {
    /// The original program (uniform scatter).
    pub uniform: TomoReport,
    /// The transformed program (balanced scatterv).
    pub balanced: TomoReport,
    /// `uniform.virtual_makespan / balanced.virtual_makespan`.
    pub speedup: f64,
}

/// Runs both variants on the Table-1 grid with `n_rays` synthetic rays.
pub fn tomo_e2e(n_rays: usize, seed: u64) -> TomoComparison {
    let base = TomoConfig {
        platform: table1_platform(),
        strategy: Strategy::Uniform,
        policy: OrderPolicy::DescendingBandwidth,
        n_rays,
        seed,
    };
    let uniform = run_tomography(&base).expect("uniform plan");
    let balanced = run_tomography(&TomoConfig { strategy: Strategy::Heuristic, ..base })
        .expect("balanced plan");
    let speedup = uniform.virtual_makespan / balanced.virtual_makespan;
    TomoComparison { uniform, balanced, speedup }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_halves_the_makespan() {
        // The paper's headline: "the total execution duration is
        // approximately half the duration of the first experiment".
        let cmp = tomo_e2e(2_000, 1);
        assert!(
            cmp.speedup > 1.6 && cmp.speedup < 2.6,
            "speedup {} outside the paper's shape",
            cmp.speedup
        );
    }

    #[test]
    fn same_physics_either_way() {
        let cmp = tomo_e2e(1_000, 2);
        let rel = (cmp.uniform.checksum - cmp.balanced.checksum).abs() / cmp.uniform.checksum;
        assert!(rel < 1e-9, "checksums diverge: {rel}");
        assert_eq!(cmp.uniform.rays_traced, 1_000);
        assert_eq!(cmp.balanced.rays_traced, 1_000);
    }

    #[test]
    fn balanced_run_is_balanced() {
        let cmp = tomo_e2e(2_000, 3);
        let min = cmp
            .balanced
            .virtual_finish
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = cmp.balanced.virtual_makespan;
        assert!((max - min) / max < 0.12, "imbalance {}", (max - min) / max);
    }
}
