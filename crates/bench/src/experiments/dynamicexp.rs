//! Dynamic-vs-static comparison (§6): the paper argues dynamic
//! master/worker schemes pay overheads a static distribution avoids.
//! This experiment measures the claim on the Table-1 grid, including the
//! one scenario where dynamic shines — load the planner did not know
//! about.

use gs_gridsim::load::LoadTrace;
use gs_gridsim::masterworker::{simulate_master_worker, MasterWorkerConfig};
use gs_gridsim::sim::{simulate_scatter, SimConfig};
use gs_scatter::ordering::OrderPolicy;
use gs_scatter::paper::table1_platform;
use gs_scatter::planner::{Planner, Strategy};

/// One dynamic configuration's outcome vs the static plan.
#[derive(Debug, Clone)]
pub struct DynamicRow {
    /// Items per chunk.
    pub chunk: usize,
    /// Request latency, seconds.
    pub latency: f64,
    /// Dynamic master/worker makespan (15 workers + dedicated master).
    pub dynamic: f64,
    /// Static balanced scatterv makespan (all 16 processors compute).
    pub static_balanced: f64,
    /// Chunks served.
    pub chunks: usize,
}

/// Sweeps chunk size × request latency against the static plan.
pub fn dynamic_vs_static(n: usize, chunks: &[usize], latencies: &[f64]) -> Vec<DynamicRow> {
    let platform = table1_platform();
    let static_plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .order_policy(OrderPolicy::DescendingBandwidth)
        .plan(n)
        .unwrap();
    let static_balanced = static_plan.predicted_makespan;

    // Workers = everyone but the root (the master is dedicated).
    let workers: Vec<_> = platform
        .procs()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != platform.root())
        .map(|(_, p)| p)
        .collect();

    let mut out = Vec::new();
    for &chunk in chunks {
        for &latency in latencies {
            let run = simulate_master_worker(
                &workers,
                n,
                &MasterWorkerConfig { chunk_size: chunk, request_latency: latency, loads: vec![] },
            );
            out.push(DynamicRow {
                chunk,
                latency,
                dynamic: run.makespan,
                static_balanced,
                chunks: run.chunks,
            });
        }
    }
    out
}

/// The surprise-load scenario: a 2x background job on `sekhmet` that the
/// static plan was not told about. Returns
/// `(static_stale, dynamic, static_informed)` makespans.
pub fn surprise_load(n: usize, chunk: usize, latency: f64) -> (f64, f64, f64) {
    let platform = table1_platform();
    let sekhmet = 3usize;
    let spike = LoadTrace::new(vec![(0.0, 2.0)]);

    // Static plan computed WITHOUT knowing about the load, executed on the
    // loaded grid.
    let stale_plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .plan(n)
        .unwrap();
    let view = platform.ordered(&stale_plan.order);
    let pos = stale_plan.order.iter().position(|&i| i == sekhmet).unwrap();
    let mut loads = vec![LoadTrace::none(); 16];
    loads[pos] = spike.clone();
    let static_stale =
        simulate_scatter(&view, &stale_plan.counts_in_order(), &SimConfig::with_loads(loads))
            .makespan;

    // Dynamic: workers under the same load.
    let workers: Vec<_> = platform
        .procs()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != platform.root())
        .map(|(_, p)| p)
        .collect();
    let mut wloads = vec![LoadTrace::none(); workers.len()];
    wloads[sekhmet - 1] = spike; // workers skip index 0 (the root)
    let dynamic = simulate_master_worker(
        &workers,
        n,
        &MasterWorkerConfig { chunk_size: chunk, request_latency: latency, loads: wloads },
    )
    .makespan;

    // Static plan computed WITH the monitor's knowledge (§3's NWS remark).
    let mut informed_procs = platform.procs().to_vec();
    if let gs_scatter::cost::CostFn::Linear { slope } = informed_procs[sekhmet].comp {
        informed_procs[sekhmet].comp = gs_scatter::cost::CostFn::Linear { slope: slope * 2.0 };
    }
    let informed_platform =
        gs_scatter::cost::Platform::new(informed_procs, platform.root()).unwrap();
    let static_informed = Planner::new(informed_platform)
        .strategy(Strategy::Heuristic)
        .plan(n)
        .unwrap()
        .predicted_makespan;

    (static_stale, dynamic, static_informed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_wins_at_grid_latencies() {
        // WAN-scale request latency, modest chunks: the paper's point.
        let rows = dynamic_vs_static(100_000, &[1_000], &[0.5]);
        let r = &rows[0];
        assert!(
            r.dynamic > r.static_balanced * 1.05,
            "dynamic {} should lose to static {} at 0.5 s latency",
            r.dynamic,
            r.static_balanced
        );
    }

    #[test]
    fn dynamic_competitive_with_free_requests() {
        // Zero latency, small chunks: self-scheduling approaches the
        // optimum (it loses only the dedicated master's compute).
        let rows = dynamic_vs_static(100_000, &[1_000], &[0.0]);
        let r = &rows[0];
        assert!(
            r.dynamic < r.static_balanced * 1.25,
            "dynamic {} should be close to static {}",
            r.dynamic,
            r.static_balanced
        );
    }

    #[test]
    fn surprise_load_ordering() {
        let (stale, dynamic, informed) = surprise_load(100_000, 1_000, 0.05);
        // The informed static plan is best; the stale static plan pays the
        // full spike; dynamic lands in between (it adapts, at overhead).
        assert!(informed < stale, "monitoring must help: {informed} vs {stale}");
        assert!(dynamic < stale * 1.05, "dynamic adapts: {dynamic} vs stale {stale}");
    }

    #[test]
    fn chunk_sweep_is_consistent() {
        for r in dynamic_vs_static(50_000, &[500, 5_000], &[0.1]) {
            assert!(r.dynamic > 0.0);
            assert!(r.chunks >= 50_000usize.div_ceil(r.chunk));
        }
    }
}
