//! Ablation of the single-port root assumption (§2.3) on the two-site
//! Table-1 topology: how much would extra root NICs (and a contended WAN)
//! change the picture?

use gs_gridsim::multiport::{simulate_multiport, MultiportConfig};
use gs_scatter::ordering::OrderPolicy;
use gs_scatter::paper::table1_platform;
use gs_scatter::planner::{Planner, Strategy};

/// Result at one port count.
#[derive(Debug, Clone)]
pub struct MultiportRow {
    /// Number of concurrent root ports.
    pub ports: usize,
    /// Makespan without WAN contention.
    pub makespan_free: f64,
    /// Makespan with remote transfers serialized on the shared WAN.
    pub makespan_wan: f64,
    /// Total pre-receive waiting (the stair area), WAN-free case.
    pub stair_free: f64,
}

/// Site of each Table-1 processor by *platform index*: processors 1–8
/// (dinadan…seven) are at the first site, the eight `leda` CPUs at the
/// second (§5.1: "at the other end of France").
pub fn table1_sites() -> Vec<usize> {
    (0..16).map(|i| usize::from(i >= 8)).collect()
}

/// Sweeps the root's port count on the balanced Table-1 plan.
pub fn multiport_ablation(n: usize, ports: &[usize]) -> Vec<MultiportRow> {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .order_policy(OrderPolicy::DescendingBandwidth)
        .plan(n)
        .unwrap();
    let view = platform.ordered(&plan.order);
    let counts = plan.counts_in_order();
    let sites_by_index = table1_sites();
    let sites: Vec<usize> = plan.order.iter().map(|&i| sites_by_index[i]).collect();

    ports
        .iter()
        .map(|&k| {
            let free = simulate_multiport(
                &view,
                &counts,
                &MultiportConfig { ports: k, sites: sites.clone(), root_site: 0, wan_serializes: false },
                &[],
            );
            let wan = simulate_multiport(
                &view,
                &counts,
                &MultiportConfig { ports: k, sites: sites.clone(), root_site: 0, wan_serializes: true },
                &[],
            );
            MultiportRow {
                ports: k,
                makespan_free: free.makespan(),
                makespan_wan: wan.makespan(),
                stair_free: free.comm_start.iter().sum(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_port_matches_planner_prediction() {
        let platform = table1_platform();
        let plan = Planner::new(platform)
            .strategy(Strategy::Heuristic)
            .plan(100_000)
            .unwrap();
        let rows = multiport_ablation(100_000, &[1]);
        assert!((rows[0].makespan_free - plan.predicted_makespan).abs() < 1e-9);
    }

    #[test]
    fn ports_reduce_stair_monotonically() {
        let rows = multiport_ablation(100_000, &[1, 2, 4, 16]);
        for w in rows.windows(2) {
            assert!(w[1].stair_free <= w[0].stair_free + 1e-9);
            assert!(w[1].makespan_free <= w[0].makespan_free + 1e-9);
        }
        // With 16 ports and no WAN, the stair vanishes.
        assert!(rows.last().unwrap().stair_free < 1e-9);
    }

    #[test]
    fn wan_never_helps() {
        for row in multiport_ablation(50_000, &[1, 4]) {
            assert!(row.makespan_wan >= row.makespan_free - 1e-9, "{row:?}");
        }
    }

    #[test]
    fn table1_sites_split_8_8() {
        let sites = table1_sites();
        assert_eq!(sites.iter().filter(|&&s| s == 0).count(), 8);
        assert_eq!(sites.iter().filter(|&&s| s == 1).count(), 8);
        assert_eq!(sites[0], 0, "dinadan at the root site");
    }
}
