//! Strategy ablation: how much each solver buys as platform heterogeneity
//! grows. At homogeneity the uniform scatter is already fine; the gain of
//! the paper's machinery scales with CPU/link spread.

use gs_scatter::cost::{Platform, Processor};
use gs_scatter::ordering::OrderPolicy;
use gs_scatter::planner::{Planner, Strategy};

/// Results at one heterogeneity level.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// CPU-speed spread factor between the fastest and slowest machine.
    pub spread: f64,
    /// Uniform-distribution makespan.
    pub uniform: f64,
    /// Closed-form makespan.
    pub closed_form: f64,
    /// LP-heuristic makespan.
    pub heuristic: f64,
    /// Exact-DP makespan.
    pub exact: f64,
    /// `uniform / exact` — the available speedup.
    pub available_speedup: f64,
}

/// Builds a `p`-processor platform whose per-item compute costs span a
/// geometric range of `spread` (1 = homogeneous), with mildly varied
/// links.
pub fn spread_platform(p: usize, spread: f64) -> Platform {
    assert!(p >= 2 && spread >= 1.0);
    let base_alpha = 8e-3;
    let procs: Vec<Processor> = (0..p)
        .map(|i| {
            let t = i as f64 / (p - 1) as f64;
            let alpha = base_alpha * spread.powf(t - 0.5);
            let beta = if i == 0 { 0.0 } else { 1e-5 * (1.0 + (i % 4) as f64) };
            Processor::linear(format!("m{i}"), beta, alpha)
        })
        .collect();
    Platform::new(procs, 0).expect("valid")
}

/// Sweeps heterogeneity levels.
pub fn strategy_ablation(p: usize, n: usize, spreads: &[f64]) -> Vec<AblationRow> {
    spreads
        .iter()
        .map(|&spread| {
            let platform = spread_platform(p, spread);
            let run = |s: Strategy| {
                Planner::new(platform.clone())
                    .strategy(s)
                    .order_policy(OrderPolicy::DescendingBandwidth)
                    .plan(n)
                    .unwrap()
                    .predicted_makespan
            };
            let uniform = run(Strategy::Uniform);
            let closed_form = run(Strategy::ClosedForm);
            let heuristic = run(Strategy::Heuristic);
            let exact = run(Strategy::Exact);
            AblationRow {
                spread,
                uniform,
                closed_form,
                heuristic,
                exact,
                available_speedup: uniform / exact,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_heterogeneity() {
        let rows = strategy_ablation(6, 5_000, &[1.0, 4.0, 16.0]);
        assert!(rows[0].available_speedup < rows[1].available_speedup);
        assert!(rows[1].available_speedup < rows[2].available_speedup);
    }

    #[test]
    fn solvers_are_ordered_correctly() {
        for row in strategy_ablation(5, 3_000, &[1.0, 8.0]) {
            // Exact is optimal; the others can only be >= (within float dust).
            assert!(row.exact <= row.heuristic + 1e-9, "{row:?}");
            assert!(row.exact <= row.closed_form + 1e-9, "{row:?}");
            assert!(row.exact <= row.uniform + 1e-9, "{row:?}");
            // The heuristic stays within a hair of exact.
            assert!((row.heuristic - row.exact) / row.exact < 1e-2, "{row:?}");
        }
    }

    #[test]
    fn homogeneous_platform_gains_little() {
        let rows = strategy_ablation(6, 5_000, &[1.0]);
        assert!(rows[0].available_speedup < 1.2, "{rows:?}");
    }

    #[test]
    fn spread_platform_shape() {
        let p = spread_platform(4, 16.0);
        let a0 = p.procs()[0].comp.eval(1000);
        let a3 = p.procs()[3].comp.eval(1000);
        assert!((a3 / a0 - 16.0).abs() < 1e-6, "{}", a3 / a0);
    }
}
