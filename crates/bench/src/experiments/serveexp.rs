//! Load test for the planning daemon (`serve_load` binary): measures
//! cold-start latency (distinct, uncached requests) and warm throughput
//! (many clients hammering one cached platform) against an in-process
//! daemon on an ephemeral loopback port.
//!
//! The deterministic fields (planned makespan, request counts, the
//! "every warm response was a cache hit and bit-identical" invariants)
//! feed the `bench_gate` smoke baseline; the wall-clock fields
//! (latency percentiles, requests/sec) are recorded in the committed
//! full `BENCH_serve.json`, where `check_serve_perf` holds them to the
//! service-level contract documented in docs/serve.md.

use std::sync::Arc;
use std::time::Instant;

use gs_serve::engine::{Engine, EngineConfig};
use gs_serve::protocol::{CacheStatus, Outcome, PlanParams, Request, RequestBody};
use gs_serve::server::serve;
use gs_serve::Client;

/// Sizing knobs for one load run.
#[derive(Debug, Clone, Copy)]
pub struct ServeLoadConfig {
    /// Concurrent client connections in the warm phase.
    pub clients: usize,
    /// Total warm (cached) requests across all clients.
    pub warm_requests: usize,
    /// Distinct cold requests (each a guaranteed cache miss).
    pub cold_requests: usize,
    /// Items of the warm request (the paper's 817 101-record workload).
    pub items: u64,
}

impl ServeLoadConfig {
    /// The full-size run behind the committed `BENCH_serve.json`.
    pub fn full() -> ServeLoadConfig {
        ServeLoadConfig { clients: 8, warm_requests: 50_000, cold_requests: 32, items: 817_101 }
    }

    /// The CI-sized run behind `BENCH_serve.smoke.json`.
    pub fn smoke() -> ServeLoadConfig {
        ServeLoadConfig { clients: 4, warm_requests: 2_000, cold_requests: 8, items: 817_101 }
    }
}

/// One load run's results. Wall-clock fields are machine-dependent;
/// everything else is deterministic.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    /// Processors in the benchmark platform (the paper's testbed).
    pub p: usize,
    /// Items of the warm request.
    pub items: u64,
    /// Concurrent clients in the warm phase.
    pub clients: usize,
    /// Cold requests issued (== distinct cache keys planned).
    pub cold_requests: u64,
    /// Warm requests issued.
    pub warm_requests: u64,
    /// Makespan the daemon planned for the warm request (seconds).
    pub makespan: f64,
    /// Every warm response was served from cache (`hit`).
    pub hit_only: bool,
    /// Every warm response carried bit-identical plan arrays.
    pub consistent: bool,
    /// Requests shed by admission control (must be 0 at these sizes).
    pub shed: u64,
    /// Cold latency percentiles, seconds.
    pub cold_p50_secs: f64,
    /// 95th percentile of cold latency, seconds.
    pub cold_p95_secs: f64,
    /// 99th percentile of cold latency, seconds.
    pub cold_p99_secs: f64,
    /// Warm latency percentiles, seconds.
    pub warm_p50_secs: f64,
    /// 95th percentile of warm latency, seconds.
    pub warm_p95_secs: f64,
    /// 99th percentile of warm latency, seconds.
    pub warm_p99_secs: f64,
    /// Warm-phase aggregate throughput, requests per second.
    pub warm_throughput_rps: f64,
    /// Warm-phase wall time, seconds.
    pub warm_wall_secs: f64,
}

/// Exact sample percentile (nearest-rank) over unsorted latencies.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn plan_request(id: String, items: u64) -> Request {
    let platform =
        gs_scatter::platform_file::render_platform(&gs_scatter::paper::table1_platform());
    Request {
        id,
        body: RequestBody::Plan(PlanParams { platform, items, strategy: "heuristic".into() }),
    }
}

/// Runs the load test against a fresh in-process daemon.
pub fn serve_load(cfg: ServeLoadConfig) -> ServeLoadReport {
    let p = gs_scatter::paper::table1_platform().len();
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let handle = serve(engine, "127.0.0.1:0").expect("bind ephemeral loopback port");
    let addr = handle.addr().to_string();

    // Cold phase: distinct item counts, one connection, every request a
    // guaranteed miss. Latency = decode + plan + encode + loopback.
    let mut client = Client::connect(&addr).expect("connect");
    let mut shed = 0u64;
    let mut cold = Vec::with_capacity(cfg.cold_requests);
    for i in 0..cfg.cold_requests {
        let req = plan_request(format!("cold-{i}"), cfg.items + 1 + i as u64);
        let t = Instant::now();
        let resp = client.call(&req).expect("cold response");
        cold.push(t.elapsed().as_secs_f64());
        if matches!(resp.outcome, Outcome::Error { code: gs_serve::protocol::ErrorCode::Overloaded, .. }) {
            shed += 1;
        }
    }

    // Prime the warm key, then hammer it from `clients` connections.
    let primed = client.call(&plan_request("prime".into(), cfg.items)).expect("prime");
    let (makespan, counts) = match primed.outcome {
        Outcome::Plan(p) => (p.makespan, (p.counts, p.displs, p.order)),
        other => panic!("prime answered {other:?}"),
    };
    let per_client = cfg.warm_requests / cfg.clients.max(1);
    let wall = Instant::now();
    let workers: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let addr = addr.clone();
            let baseline = counts.clone();
            let items = cfg.items;
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut lat = Vec::with_capacity(per_client);
                let mut hit_only = true;
                let mut consistent = true;
                let mut shed = 0u64;
                for i in 0..per_client {
                    let req = plan_request(format!("warm-{c}-{i}"), items);
                    let t = Instant::now();
                    let resp = client.call(&req).expect("warm response");
                    lat.push(t.elapsed().as_secs_f64());
                    match resp.outcome {
                        Outcome::Plan(plan) => {
                            hit_only &= plan.cache == CacheStatus::Hit;
                            consistent &=
                                (plan.counts, plan.displs, plan.order) == baseline;
                        }
                        Outcome::Error {
                            code: gs_serve::protocol::ErrorCode::Overloaded, ..
                        } => {
                            shed += 1;
                            hit_only = false;
                        }
                        other => panic!("warm request answered {other:?}"),
                    }
                }
                (lat, hit_only, consistent, shed)
            })
        })
        .collect();

    let mut warm = Vec::with_capacity(per_client * cfg.clients);
    let mut hit_only = true;
    let mut consistent = true;
    for w in workers {
        let (lat, h, cons, s) = w.join().expect("warm worker");
        warm.extend(lat);
        hit_only &= h;
        consistent &= cons;
        shed += s;
    }
    let warm_wall_secs = wall.elapsed().as_secs_f64();

    handle.shutdown();
    handle.join();

    cold.sort_by(f64::total_cmp);
    warm.sort_by(f64::total_cmp);
    ServeLoadReport {
        p,
        items: cfg.items,
        clients: cfg.clients,
        cold_requests: cold.len() as u64,
        warm_requests: warm.len() as u64,
        makespan,
        hit_only,
        consistent,
        shed,
        cold_p50_secs: percentile(&cold, 0.50),
        cold_p95_secs: percentile(&cold, 0.95),
        cold_p99_secs: percentile(&cold, 0.99),
        warm_p50_secs: percentile(&warm, 0.50),
        warm_p95_secs: percentile(&warm, 0.95),
        warm_p99_secs: percentile(&warm, 0.99),
        warm_throughput_rps: warm.len() as f64 / warm_wall_secs.max(1e-12),
        warm_wall_secs,
    }
}

/// Renders a report as the `BENCH_serve[.smoke].json` document.
pub fn serve_load_json(r: &ServeLoadReport) -> String {
    let mut out = String::from("{\n  \"bench\": \"serve_load\",\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"p\": {},\n  \"items\": {},\n  \"clients\": {},\n", r.p, r.items, r.clients));
    out.push_str(&format!(
        "  \"cold_requests\": {},\n  \"warm_requests\": {},\n",
        r.cold_requests, r.warm_requests
    ));
    out.push_str(&format!(
        "  \"makespan\": {},\n  \"hit_only\": {},\n  \"consistent\": {},\n  \"shed\": {},\n",
        r.makespan, r.hit_only, r.consistent, r.shed
    ));
    out.push_str(&format!(
        "  \"cold_p50_secs\": {:.6},\n  \"cold_p95_secs\": {:.6},\n  \"cold_p99_secs\": {:.6},\n",
        r.cold_p50_secs, r.cold_p95_secs, r.cold_p99_secs
    ));
    out.push_str(&format!(
        "  \"warm_p50_secs\": {:.6},\n  \"warm_p95_secs\": {:.6},\n  \"warm_p99_secs\": {:.6},\n",
        r.warm_p50_secs, r.warm_p95_secs, r.warm_p99_secs
    ));
    out.push_str(&format!(
        "  \"warm_throughput_rps\": {:.1},\n  \"warm_wall_secs\": {:.3}\n}}\n",
        r.warm_throughput_rps, r.warm_wall_secs
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_load_run_is_cached_and_consistent() {
        let r = serve_load(ServeLoadConfig {
            clients: 2,
            warm_requests: 40,
            cold_requests: 3,
            items: 12_345,
        });
        assert_eq!(r.cold_requests, 3);
        assert_eq!(r.warm_requests, 40);
        assert!(r.hit_only, "warm responses must all be cache hits");
        assert!(r.consistent, "warm plans must be bit-identical");
        assert_eq!(r.shed, 0);
        assert!(r.makespan > 0.0);
        assert!(r.warm_p50_secs <= r.warm_p95_secs);
        assert!(r.warm_p95_secs <= r.warm_p99_secs);
        assert!(r.warm_throughput_rps > 0.0);
    }

    #[test]
    fn report_json_parses_back() {
        let r = ServeLoadReport {
            p: 13,
            items: 817_101,
            clients: 8,
            cold_requests: 32,
            warm_requests: 50_000,
            makespan: 2.5,
            hit_only: true,
            consistent: true,
            shed: 0,
            cold_p50_secs: 0.0002,
            cold_p95_secs: 0.0004,
            cold_p99_secs: 0.0005,
            warm_p50_secs: 0.0001,
            warm_p95_secs: 0.0002,
            warm_p99_secs: 0.0003,
            warm_throughput_rps: 42_000.0,
            warm_wall_secs: 1.19,
        };
        let doc = gs_scatter::obs::json::parse(&serve_load_json(&r)).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("serve_load"));
        assert_eq!(doc.get("warm_requests").unwrap().as_u64(), Some(50_000));
        assert_eq!(doc.get("makespan").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.50), 2.0);
        assert_eq!(percentile(&sorted, 0.95), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
