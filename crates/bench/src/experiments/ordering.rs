//! Ordering-policy study (§4.3–4.4, Theorem 3): on random linear
//! platforms, compare descending bandwidth against ascending, random, and
//! the exhaustive best order.
//!
//! Makespans are evaluated with the closed form's exact rational duration
//! (the rational relaxation is what Theorem 3 speaks about), so "best"
//! here is exact, not a float artifact.

use gs_scatter::brute::permute;
use gs_scatter::closed_form::closed_form_from_slopes;
use gs_scatter::closed_form::LinearSlopes;
use gs_numeric::Rational;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random linear platform: per-processor `(beta, alpha)` with the root
/// (beta = 0) last.
#[derive(Debug, Clone)]
pub struct RandomPlatform {
    /// Comm slopes (s/item), index order; last is the root with 0.
    pub beta: Vec<f64>,
    /// Comp slopes (s/item).
    pub alpha: Vec<f64>,
}

/// Draws a platform with log-uniform heterogeneity.
pub fn random_platform(p: usize, rng: &mut StdRng) -> RandomPlatform {
    assert!(p >= 2);
    let log_uniform = |rng: &mut StdRng, lo: f64, hi: f64| -> f64 {
        let (l, h) = (lo.ln(), hi.ln());
        (l + rng.gen_range(0.0..1.0) * (h - l)).exp()
    };
    let mut beta: Vec<f64> = (0..p - 1)
        .map(|_| log_uniform(rng, 1e-6, 3e-4))
        .collect();
    beta.push(0.0); // root
    let alpha: Vec<f64> = (0..p).map(|_| log_uniform(rng, 2e-3, 3e-2)).collect();
    RandomPlatform { beta, alpha }
}

/// Exact rational makespan of the closed form for one ordering of the
/// non-root processors (`perm` are indices into the platform, root
/// appended automatically).
fn duration_for_order(plat: &RandomPlatform, perm: &[usize], n: usize) -> Rational {
    let p = plat.beta.len();
    let mut beta = Vec::with_capacity(p);
    let mut alpha = Vec::with_capacity(p);
    for &i in perm {
        beta.push(Rational::from_f64(plat.beta[i]).unwrap());
        alpha.push(Rational::from_f64(plat.alpha[i]).unwrap());
    }
    beta.push(Rational::from_f64(plat.beta[p - 1]).unwrap());
    alpha.push(Rational::from_f64(plat.alpha[p - 1]).unwrap());
    let slopes = LinearSlopes { beta, alpha };
    closed_form_from_slopes(&slopes, n).unwrap().duration
}

/// Aggregate results over many random platforms.
#[derive(Debug, Clone)]
pub struct OrderingStudy {
    /// Number of platforms tried.
    pub trials: usize,
    /// How often descending bandwidth achieved the exhaustive optimum.
    pub desc_optimal: usize,
    /// Mean relative gap of each policy to the exhaustive best.
    pub mean_gap_desc: f64,
    /// Mean gap, ascending bandwidth.
    pub mean_gap_asc: f64,
    /// Mean gap, random order.
    pub mean_gap_random: f64,
    /// Worst observed ascending-order gap (how bad the §5.2 control can
    /// get).
    pub worst_gap_asc: f64,
}

/// Runs the study: `trials` random platforms with `p` processors and `n`
/// items, exhaustive search over the `(p-1)!` orders.
pub fn ordering_study(trials: usize, p: usize, n: usize, seed: u64) -> OrderingStudy {
    assert!((2..=8).contains(&p), "exhaustive search needs small p");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut desc_optimal = 0usize;
    let (mut gap_d, mut gap_a, mut gap_r) = (0.0f64, 0.0f64, 0.0f64);
    let mut worst_asc = 0.0f64;

    for _ in 0..trials {
        let plat = random_platform(p, &mut rng);
        let root = p - 1;
        let others: Vec<usize> = (0..root).collect();

        // Exhaustive best (exact rationals).
        let mut best: Option<Rational> = None;
        permute(&mut others.clone(), 0, &mut |perm: &[usize]| {
            let d = duration_for_order(&plat, perm, n);
            if best.as_ref().is_none_or(|b| d < *b) {
                best = Some(d);
            }
        });
        let best = best.unwrap();

        // Policies.
        let by_beta = |asc: bool| -> Vec<usize> {
            let mut v = others.clone();
            v.sort_by(|&a, &b| {
                let o = plat.beta[a].partial_cmp(&plat.beta[b]).unwrap();
                if asc {
                    o
                } else {
                    o.reverse()
                }
            });
            v
        };
        let desc = duration_for_order(&plat, &by_beta(true), n); // ascending beta = descending bandwidth
        let asc = duration_for_order(&plat, &by_beta(false), n);
        let mut shuffled = others.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let random = duration_for_order(&plat, &shuffled, n);

        if desc == best {
            desc_optimal += 1;
        }
        let gap = |d: &Rational| ((d - &best) / &best).to_f64();
        gap_d += gap(&desc);
        let ga = gap(&asc);
        gap_a += ga;
        worst_asc = worst_asc.max(ga);
        gap_r += gap(&random);
    }

    OrderingStudy {
        trials,
        desc_optimal,
        mean_gap_desc: gap_d / trials as f64,
        mean_gap_asc: gap_a / trials as f64,
        mean_gap_random: gap_r / trials as f64,
        worst_gap_asc: worst_asc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descending_is_always_optimal_in_rationals() {
        // Theorem 3 says it must be, for linear costs in rationals.
        let study = ordering_study(25, 5, 10_000, 42);
        assert_eq!(study.desc_optimal, study.trials, "{study:?}");
        assert!(study.mean_gap_desc.abs() < 1e-12);
    }

    #[test]
    fn ascending_and_random_are_worse() {
        let study = ordering_study(25, 5, 10_000, 7);
        assert!(study.mean_gap_asc > 0.0);
        assert!(study.mean_gap_random >= 0.0);
        assert!(study.mean_gap_asc >= study.mean_gap_random * 0.5);
    }

    #[test]
    fn random_platform_is_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let plat = random_platform(6, &mut rng);
        assert_eq!(plat.beta.len(), 6);
        assert_eq!(*plat.beta.last().unwrap(), 0.0);
        assert!(plat.beta[..5].iter().all(|&b| b > 0.0));
        assert!(plat.alpha.iter().all(|&a| a > 0.0));
    }
}
