//! Table 1 and Figures 1–4.

use gs_gridsim::chart::{figure_rows, render_figure, summary_line};
use gs_gridsim::gantt::{legend, render_gantt};
use gs_gridsim::load::LoadTrace;
use gs_gridsim::metrics::RunMetrics;
use gs_gridsim::sim::{simulate_scatter, SimConfig};
use gs_scatter::cost::{Platform, Processor};
use gs_scatter::distribution::uniform_distribution;
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::paper::{reported, table1_platform, table1_rows, N_RAYS_1999};
use gs_scatter::planner::{Planner, Strategy};

/// Shape summary of one figure reproduction, used by binaries and tests.
#[derive(Debug, Clone)]
pub struct FigureSummary {
    /// Earliest per-processor finish, seconds.
    pub min_finish: f64,
    /// Latest finish (the makespan), seconds.
    pub max_finish: f64,
    /// §5.2's balance metric, `(max − min) / max`.
    pub imbalance: f64,
    /// Items per processor, scatter order.
    pub counts: Vec<usize>,
    /// Rendered text figure.
    pub rendering: String,
}

/// Prints Table 1 and returns its text.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("Table 1: processors used as computational nodes (measured coefficients)\n");
    out.push_str(&format!(
        "{:<4} {:<10} {:<9} {:>12} {:>7} {:>12}\n",
        "#", "machine", "type", "alpha (s/ray)", "rating", "beta (s/ray)"
    ));
    for r in table1_rows() {
        out.push_str(&format!(
            "{:<4} {:<10} {:<9} {:>12.6} {:>7.2} {:>12.2e}\n",
            r.cpu_index, r.machine, r.cpu_type, r.alpha, r.rating, r.beta
        ));
    }
    out.push_str(&format!("workload: n = {N_RAYS_1999} rays (all 1999 seismic events)\n"));
    out
}

/// Figure 1: the stair effect of a single-port scatter, on a toy
/// 4-processor platform (P4 is the root, as in the paper's figure).
pub fn fig1(width: usize) -> String {
    let platform = Platform::new(
        vec![
            Processor::linear("P1", 0.8, 2.2),
            Processor::linear("P2", 0.8, 2.2),
            Processor::linear("P3", 0.8, 2.2),
            Processor::linear("P4", 0.0, 2.2), // root
        ],
        3,
    )
    .unwrap();
    let order = scatter_order(&platform, OrderPolicy::AsIs);
    let view = platform.ordered(&order);
    let counts = uniform_distribution(4, 20);
    let sim = simulate_scatter(&view, &counts, &SimConfig::ideal());
    let names: Vec<&str> = order.iter().map(|&i| platform.procs()[i].name.as_str()).collect();
    let mut out = String::from(
        "Figure 1: a scatter communication followed by a computation phase\n",
    );
    out.push_str(&render_gantt(&names, &sim.timeline, width));
    out.push_str(&legend());
    out.push_str("note the stair effect: each processor starts receiving only after\nall previous processors have been served (single-port root)\n");
    out
}

fn run_figure(
    title: &str,
    strategy: Strategy,
    policy: OrderPolicy,
    n: usize,
    loads: Vec<LoadTrace>,
    reported_range: (f64, f64),
) -> FigureSummary {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .strategy(strategy)
        .order_policy(policy)
        .plan(n)
        .expect("Table-1 platform is linear/affine");
    let view = platform.ordered(&plan.order);
    let counts = plan.counts_in_order();
    let config = if loads.is_empty() {
        SimConfig::ideal()
    } else {
        SimConfig::with_loads(loads)
    };
    let sim = simulate_scatter(&view, &counts, &config);
    let metrics = RunMetrics::from_timeline(&sim.timeline);
    let names: Vec<&str> = plan.order.iter().map(|&i| platform.procs()[i].name.as_str()).collect();

    let rows = figure_rows(&names, &counts, &sim.timeline);
    let mut rendering = render_figure(title, &rows, 48);
    rendering.push_str(&format!("{}\n", summary_line(&rows)));
    rendering.push_str(&format!(
        "paper reported: earliest {:.0} s, latest {:.0} s (real testbed, with noise)\n",
        reported_range.0, reported_range.1
    ));

    FigureSummary {
        min_finish: metrics.min_finish,
        max_finish: metrics.makespan,
        imbalance: metrics.imbalance,
        counts,
        rendering,
    }
}

/// Figure 2: the original program — uniform distribution, descending
/// bandwidth order.
pub fn fig2(n: usize) -> FigureSummary {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    let counts = uniform_distribution(platform.len(), n);
    let sim = simulate_scatter(&view, &counts, &SimConfig::ideal());
    let metrics = RunMetrics::from_timeline(&sim.timeline);
    let names: Vec<&str> = order.iter().map(|&i| platform.procs()[i].name.as_str()).collect();
    let rows = figure_rows(&names, &counts, &sim.timeline);
    let mut rendering = render_figure(
        "Figure 2: original program execution (uniform data distribution)",
        &rows,
        48,
    );
    rendering.push_str(&format!("{}\n", summary_line(&rows)));
    rendering.push_str(&format!(
        "paper reported: earliest {:.0} s, latest {:.0} s\n",
        reported::UNIFORM_MIN_FINISH,
        reported::UNIFORM_MAX_FINISH
    ));
    FigureSummary {
        min_finish: metrics.min_finish,
        max_finish: metrics.makespan,
        imbalance: metrics.imbalance,
        counts,
        rendering,
    }
}

/// Figure 3: load-balanced execution, nodes sorted by descending
/// bandwidth.
pub fn fig3(n: usize) -> FigureSummary {
    run_figure(
        "Figure 3: load-balanced execution, descending bandwidth order",
        Strategy::Heuristic,
        OrderPolicy::DescendingBandwidth,
        n,
        Vec::new(),
        (reported::BALANCED_DESC_MIN_FINISH, reported::BALANCED_DESC_MAX_FINISH),
    )
}

/// Figure 4: load-balanced execution, nodes sorted by ascending
/// bandwidth. With `sekhmet_spike`, a background-load peak on `sekhmet`
/// reproduces the residual imbalance the paper observed (§5.2 blames "a
/// peak load on sekhmet during the experiment").
pub fn fig4(n: usize, sekhmet_spike: bool) -> FigureSummary {
    let loads = if sekhmet_spike {
        let platform = table1_platform();
        let order = scatter_order(&platform, OrderPolicy::AscendingBandwidth);
        order
            .iter()
            .map(|&i| {
                if platform.procs()[i].name == "sekhmet" {
                    // ~10% slower CPU through the whole run.
                    LoadTrace::new(vec![(0.0, 1.10)])
                } else {
                    LoadTrace::none()
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    run_figure(
        "Figure 4: load-balanced execution, ascending bandwidth order",
        Strategy::Heuristic,
        OrderPolicy::AscendingBandwidth,
        n,
        loads,
        (reported::BALANCED_ASC_MIN_FINISH, reported::BALANCED_ASC_MAX_FINISH),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_processors() {
        let t = table1();
        for name in ["dinadan", "pellinore", "caseb", "sekhmet", "merlin", "seven", "leda"] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("817101"));
    }

    #[test]
    fn fig1_shows_stairs() {
        let f = fig1(60);
        assert!(f.contains("P1"));
        assert!(f.contains("P4"));
        assert!(f.contains('='));
        assert!(f.contains('#'));
    }

    #[test]
    fn fig2_shape_small_n() {
        // Even at a scaled-down n the imbalance ratio is platform-driven.
        let s = fig2(100_000);
        assert!(s.max_finish / s.min_finish > 3.0);
        assert!(s.counts.iter().all(|&c| c == 6250));
    }

    #[test]
    fn fig3_balances() {
        let s = fig3(100_000);
        assert!(s.imbalance < 0.01, "imbalance {}", s.imbalance);
        assert!(s.rendering.contains("Figure 3"));
    }

    #[test]
    fn fig4_worse_than_fig3() {
        let f3 = fig3(100_000);
        let f4 = fig4(100_000, false);
        assert!(f4.max_finish > f3.max_finish);
    }

    #[test]
    fn fig4_spike_adds_imbalance() {
        let clean = fig4(100_000, false);
        let spiked = fig4(100_000, true);
        assert!(spiked.imbalance > clean.imbalance);
        assert!(spiked.max_finish >= clean.max_finish);
    }
}
