//! §5.2 algorithm-cost comparison: Algorithm 1 vs Algorithm 2 vs the LP
//! heuristic (paper: > 2 days vs 6 minutes vs "instantaneous" at
//! n = 817,101), and the heuristic's relative error (< 6·10⁻⁶).

use std::time::Instant;

use gs_scatter::closed_form::closed_form_distribution;
use gs_scatter::cost::Platform;
use gs_scatter::cost_table::CostTable;
use gs_scatter::dp_basic::optimal_distribution_basic_with;
use gs_scatter::dp_optimized::optimal_distribution_with;
use gs_scatter::heuristic::heuristic_distribution;
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::paper::table1_platform;
use gs_scatter::parallel::{
    optimal_distribution_dc_parallel_timed, optimal_distribution_parallel_timed, ParallelOpts,
};

/// Measured solver runtimes at one problem size.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Problem size (items).
    pub n: usize,
    /// Algorithm 1 wall time, seconds (`None` above the cap — it is
    /// quadratic and the paper itself gave up after two days).
    pub basic: Option<f64>,
    /// Algorithm 2 wall time, seconds.
    pub optimized: f64,
    /// LP heuristic wall time, seconds.
    pub heuristic: f64,
    /// Closed-form wall time, seconds.
    pub closed_form: f64,
}

/// Times the four solvers on the Table-1 platform over a size sweep.
/// `basic_cap` bounds the sizes at which the quadratic Algorithm 1 runs.
pub fn algo_runtimes(ns: &[usize], basic_cap: usize) -> Vec<RuntimeRow> {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    // One cost table for the whole sweep: each cost function is tabulated
    // once at the largest size instead of once per (solver, n) pair.
    let table = CostTable::new();
    ns.iter()
        .map(|&n| {
            let basic = (n <= basic_cap).then(|| {
                let t = Instant::now();
                let s = optimal_distribution_basic_with(&table, &view, n).unwrap();
                assert_eq!(s.counts.iter().sum::<usize>(), n);
                t.elapsed().as_secs_f64()
            });
            let t = Instant::now();
            let s = optimal_distribution_with(&table, &view, n).unwrap();
            assert_eq!(s.counts.iter().sum::<usize>(), n);
            let optimized = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let h = heuristic_distribution(&view, n).unwrap();
            assert_eq!(h.counts.iter().sum::<usize>(), n);
            let heuristic = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let c = closed_form_distribution(&view, n).unwrap();
            assert_eq!(c.counts.iter().sum::<usize>(), n);
            let closed_form = t.elapsed().as_secs_f64();

            RuntimeRow { n, basic, optimized, heuristic, closed_form }
        })
        .collect()
}

/// Quadratic extrapolation of Algorithm 1's cost to a target size, from
/// the largest measured point (the paper could only *bound* it: "more
/// than two days of work (we interrupted it before its completion)").
pub fn extrapolate_quadratic(rows: &[RuntimeRow], target_n: usize) -> Option<f64> {
    rows.iter()
        .rev()
        .find_map(|r| r.basic.map(|t| (r.n, t)))
        .map(|(n, t)| t * (target_n as f64 / n as f64).powi(2))
}

/// Heuristic-vs-optimal quality at one size.
#[derive(Debug, Clone)]
pub struct ErrorRow {
    /// Problem size.
    pub n: usize,
    /// Optimal integer makespan (Algorithm 2).
    pub optimal: f64,
    /// Heuristic makespan after rounding.
    pub heuristic: f64,
    /// `(heuristic − optimal) / optimal`.
    pub rel_error: f64,
    /// The Eq. (4) guarantee bound.
    pub bound: f64,
    /// Whether `heuristic <= bound` (must always hold).
    pub within_bound: bool,
}

/// Measures the §5.2 heuristic error across problem sizes.
pub fn heuristic_error(ns: &[usize]) -> Vec<ErrorRow> {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    let table = CostTable::new();
    ns.iter()
        .map(|&n| {
            let exact = optimal_distribution_with(&table, &view, n).unwrap();
            let h = heuristic_distribution(&view, n).unwrap();
            let rel_error = (h.makespan - exact.makespan) / exact.makespan;
            ErrorRow {
                n,
                optimal: exact.makespan,
                heuristic: h.makespan,
                rel_error,
                bound: h.guarantee_bound,
                within_bound: h.makespan <= h.guarantee_bound + 1e-9,
            }
        })
        .collect()
}

/// Wall times of the Algorithm-2 engine variants at one `(n, p)` point —
/// the machine-readable "perf trajectory" recorded in `BENCH_dp.json`
/// PR-over-PR.
#[derive(Debug, Clone)]
pub struct DpPerfRow {
    /// Problem size (items).
    pub n: usize,
    /// Processors (first `p` rows of Table 1, root first).
    pub p: usize,
    /// Serial engine (1 thread, no pruning) — the baseline.
    pub serial_secs: f64,
    /// Multi-threaded, no pruning.
    pub parallel_secs: f64,
    /// Serial with upper-bound pruning.
    pub pruned_secs: f64,
    /// Multi-threaded with pruning.
    pub parallel_pruned_secs: f64,
    /// Serial divide-and-conquer kernel (1 thread, no pruning).
    pub dc_secs: f64,
    /// Whether all variants returned bit-identical `(counts, makespan)`
    /// to the serial baseline (must always be `true`).
    pub identical: bool,
    /// The optimal makespan at this point.
    pub makespan: f64,
}

/// The platform a `(n, p)` perf point runs on: the first `p` rows of
/// Table 1 when they exist, else a deterministic synthetic
/// computation-dominated affine platform (the regime the paper's
/// seismic workload lives in, and where the DP cost is all in the
/// kernel's inner scan rather than the cost functions).
pub fn dp_perf_platform(p: usize) -> Platform {
    let full = table1_platform();
    if p <= full.len() {
        return Platform::new(full.procs()[..p].to_vec(), 0).expect("Table-1 prefix");
    }
    let procs = (0..p)
        .map(|i| {
            if i == 0 {
                // Root: no comm cost for its own share.
                return gs_scatter::cost::Processor::affine("root", 0.0, 0.0, 1e-3, 4e-3);
            }
            // Coefficients vary deterministically with the index so the
            // platform is heterogeneous but reproducible everywhere.
            // They are dyadic (sums of powers of two) and
            // compute-dominated (comm slopes ~2^-26, comp slopes ~2^-9):
            // dyadic values keep the rational arithmetic of exact
            // baselines compact, and a fast-LAN/slow-node regime is
            // where the paper's DP spends its time in the kernel proper
            // rather than in the downward scan both kernels share.
            let comm_i = 2f64.powi(-20) + (i % 7) as f64 * 2f64.powi(-22);
            let comm_s = 2f64.powi(-26) + (i % 5) as f64 * 2f64.powi(-28);
            let comp_i = 2f64.powi(-10) + (i % 3) as f64 * 2f64.powi(-11);
            let comp_s = 2f64.powi(-9) + (i % 13) as f64 * 2f64.powi(-12);
            gs_scatter::cost::Processor::affine(format!("s{i}"), comm_i, comm_s, comp_i, comp_s)
        })
        .collect();
    Platform::new(procs, 0).expect("synthetic platform")
}

/// Times the engine variants on [`dp_perf_platform`] platforms.
/// `threads` is the worker count of the parallel variants; tabulations
/// are pre-warmed through a shared [`CostTable`] so every variant times
/// the solve, not the setup.
pub fn dp_perf_trajectory(cases: &[(usize, usize)], threads: usize) -> Vec<DpPerfRow> {
    let table = CostTable::new();
    cases
        .iter()
        .map(|&(n, p)| {
            let sub = dp_perf_platform(p);
            let order = scatter_order(&sub, OrderPolicy::DescendingBandwidth);
            let view = sub.ordered(&order);
            // Warm the cache so all variants start from tabulated costs.
            for pr in &view {
                table.tabulate(&pr.comm, n);
                table.tabulate(&pr.comp, n);
            }
            let time = |opts: &ParallelOpts| {
                let t = Instant::now();
                let (sol, _) =
                    optimal_distribution_parallel_timed(&table, &view, n, opts).unwrap();
                (t.elapsed().as_secs_f64(), sol)
            };
            let (serial_secs, base) =
                time(&ParallelOpts { threads: 1, prune: false, chunk: 0 });
            let (parallel_secs, par) =
                time(&ParallelOpts { threads, prune: false, chunk: 0 });
            let (pruned_secs, pru) = time(&ParallelOpts { threads: 1, prune: true, chunk: 0 });
            let (parallel_pruned_secs, both) =
                time(&ParallelOpts { threads, prune: true, chunk: 0 });
            let t = Instant::now();
            let (dc, _) = optimal_distribution_dc_parallel_timed(
                &table,
                &view,
                n,
                &ParallelOpts { threads: 1, prune: false, chunk: 0 },
            )
            .unwrap();
            let dc_secs = t.elapsed().as_secs_f64();
            let identical = [&par, &pru, &both, &dc].iter().all(|s| {
                s.counts == base.counts && s.makespan.to_bits() == base.makespan.to_bits()
            });
            DpPerfRow {
                n,
                p,
                serial_secs,
                parallel_secs,
                pruned_secs,
                parallel_pruned_secs,
                dc_secs,
                identical,
                makespan: base.makespan,
            }
        })
        .collect()
}

/// Renders a trajectory as the `BENCH_dp.json` document (hand-rolled,
/// schema field for PR-over-PR comparability).
pub fn dp_perf_json(rows: &[DpPerfRow], threads: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"dp_perf\",\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"threads\": {threads},\n  \"rows\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"p\": {}, \"serial_secs\": {:.6}, \"parallel_secs\": {:.6}, \
             \"pruned_secs\": {:.6}, \"parallel_pruned_secs\": {:.6}, \"dc_secs\": {:.6}, \
             \"parallel_speedup\": {:.3}, \"pruned_speedup\": {:.3}, \"dc_speedup\": {:.3}, \
             \"best_speedup\": {:.3}, \"identical\": {}, \"makespan\": {}}}{}\n",
            r.n,
            r.p,
            r.serial_secs,
            r.parallel_secs,
            r.pruned_secs,
            r.parallel_pruned_secs,
            r.dc_secs,
            r.serial_secs / r.parallel_secs.max(1e-12),
            r.serial_secs / r.pruned_secs.max(1e-12),
            r.serial_secs / r.dc_secs.max(1e-12),
            r.serial_secs
                / r.parallel_secs
                    .min(r.pruned_secs)
                    .min(r.parallel_pruned_secs)
                    .min(r.dc_secs)
                    .max(1e-12),
            r.identical,
            r.makespan,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_beats_basic_at_scale() {
        let rows = algo_runtimes(&[2000], 2000);
        let r = &rows[0];
        assert!(
            r.optimized < r.basic.unwrap(),
            "Algorithm 2 ({}) must beat Algorithm 1 ({})",
            r.optimized,
            r.basic.unwrap()
        );
    }

    #[test]
    fn basic_capped() {
        let rows = algo_runtimes(&[100, 500], 200);
        assert!(rows[0].basic.is_some());
        assert!(rows[1].basic.is_none());
    }

    #[test]
    fn extrapolation_is_quadratic() {
        let rows = vec![RuntimeRow {
            n: 1000,
            basic: Some(2.0),
            optimized: 0.1,
            heuristic: 0.01,
            closed_form: 0.001,
        }];
        assert_eq!(extrapolate_quadratic(&rows, 2000), Some(8.0));
        assert_eq!(extrapolate_quadratic(&[], 10), None);
    }

    #[test]
    fn perf_trajectory_is_exact_and_well_formed() {
        let rows = dp_perf_trajectory(&[(1500, 4), (1500, 8)], 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.identical, "n={} p={}: variants must be bit-identical", r.n, r.p);
            assert!(r.serial_secs > 0.0 && r.parallel_secs > 0.0);
            assert!(r.makespan > 0.0);
        }
        let json = dp_perf_json(&rows, 2);
        assert!(json.contains("\"bench\": \"dp_perf\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"n\": 1500, \"p\": 8"));
        // Machine-readable: must parse back with the obs JSON parser.
        let doc = gs_scatter::obs::json::parse(&json).unwrap();
        assert_eq!(doc.get("threads").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn heuristic_error_tiny_and_bounded() {
        let rows = heuristic_error(&[1000, 5000]);
        for r in rows {
            assert!(r.rel_error >= -1e-12, "cannot beat the optimum");
            // Eq. (4): the absolute gap is at most one item's comm on every
            // link plus one item's compute, so the relative error shrinks
            // like 1/n. At n = 1000 that is still ~1e-2 territory.
            assert!(r.rel_error < 1e-2, "n={}: rel error {}", r.n, r.rel_error);
            assert!(r.within_bound);
        }
    }

    #[test]
    fn error_shrinks_with_n() {
        let rows = heuristic_error(&[200, 20_000]);
        assert!(rows[1].rel_error <= rows[0].rel_error + 1e-9);
    }
}
