//! §5.2 algorithm-cost comparison: Algorithm 1 vs Algorithm 2 vs the LP
//! heuristic (paper: > 2 days vs 6 minutes vs "instantaneous" at
//! n = 817,101), and the heuristic's relative error (< 6·10⁻⁶).

use std::time::Instant;

use gs_scatter::closed_form::closed_form_distribution;
use gs_scatter::dp_basic::optimal_distribution_basic;
use gs_scatter::dp_optimized::optimal_distribution;
use gs_scatter::heuristic::heuristic_distribution;
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::paper::table1_platform;

/// Measured solver runtimes at one problem size.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Problem size (items).
    pub n: usize,
    /// Algorithm 1 wall time, seconds (`None` above the cap — it is
    /// quadratic and the paper itself gave up after two days).
    pub basic: Option<f64>,
    /// Algorithm 2 wall time, seconds.
    pub optimized: f64,
    /// LP heuristic wall time, seconds.
    pub heuristic: f64,
    /// Closed-form wall time, seconds.
    pub closed_form: f64,
}

/// Times the four solvers on the Table-1 platform over a size sweep.
/// `basic_cap` bounds the sizes at which the quadratic Algorithm 1 runs.
pub fn algo_runtimes(ns: &[usize], basic_cap: usize) -> Vec<RuntimeRow> {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    ns.iter()
        .map(|&n| {
            let basic = (n <= basic_cap).then(|| {
                let t = Instant::now();
                let s = optimal_distribution_basic(&view, n).unwrap();
                assert_eq!(s.counts.iter().sum::<usize>(), n);
                t.elapsed().as_secs_f64()
            });
            let t = Instant::now();
            let s = optimal_distribution(&view, n).unwrap();
            assert_eq!(s.counts.iter().sum::<usize>(), n);
            let optimized = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let h = heuristic_distribution(&view, n).unwrap();
            assert_eq!(h.counts.iter().sum::<usize>(), n);
            let heuristic = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let c = closed_form_distribution(&view, n).unwrap();
            assert_eq!(c.counts.iter().sum::<usize>(), n);
            let closed_form = t.elapsed().as_secs_f64();

            RuntimeRow { n, basic, optimized, heuristic, closed_form }
        })
        .collect()
}

/// Quadratic extrapolation of Algorithm 1's cost to a target size, from
/// the largest measured point (the paper could only *bound* it: "more
/// than two days of work (we interrupted it before its completion)").
pub fn extrapolate_quadratic(rows: &[RuntimeRow], target_n: usize) -> Option<f64> {
    rows.iter()
        .rev()
        .find_map(|r| r.basic.map(|t| (r.n, t)))
        .map(|(n, t)| t * (target_n as f64 / n as f64).powi(2))
}

/// Heuristic-vs-optimal quality at one size.
#[derive(Debug, Clone)]
pub struct ErrorRow {
    /// Problem size.
    pub n: usize,
    /// Optimal integer makespan (Algorithm 2).
    pub optimal: f64,
    /// Heuristic makespan after rounding.
    pub heuristic: f64,
    /// `(heuristic − optimal) / optimal`.
    pub rel_error: f64,
    /// The Eq. (4) guarantee bound.
    pub bound: f64,
    /// Whether `heuristic <= bound` (must always hold).
    pub within_bound: bool,
}

/// Measures the §5.2 heuristic error across problem sizes.
pub fn heuristic_error(ns: &[usize]) -> Vec<ErrorRow> {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    ns.iter()
        .map(|&n| {
            let exact = optimal_distribution(&view, n).unwrap();
            let h = heuristic_distribution(&view, n).unwrap();
            let rel_error = (h.makespan - exact.makespan) / exact.makespan;
            ErrorRow {
                n,
                optimal: exact.makespan,
                heuristic: h.makespan,
                rel_error,
                bound: h.guarantee_bound,
                within_bound: h.makespan <= h.guarantee_bound + 1e-9,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_beats_basic_at_scale() {
        let rows = algo_runtimes(&[2000], 2000);
        let r = &rows[0];
        assert!(
            r.optimized < r.basic.unwrap(),
            "Algorithm 2 ({}) must beat Algorithm 1 ({})",
            r.optimized,
            r.basic.unwrap()
        );
    }

    #[test]
    fn basic_capped() {
        let rows = algo_runtimes(&[100, 500], 200);
        assert!(rows[0].basic.is_some());
        assert!(rows[1].basic.is_none());
    }

    #[test]
    fn extrapolation_is_quadratic() {
        let rows = vec![RuntimeRow {
            n: 1000,
            basic: Some(2.0),
            optimized: 0.1,
            heuristic: 0.01,
            closed_form: 0.001,
        }];
        assert_eq!(extrapolate_quadratic(&rows, 2000), Some(8.0));
        assert_eq!(extrapolate_quadratic(&[], 10), None);
    }

    #[test]
    fn heuristic_error_tiny_and_bounded() {
        let rows = heuristic_error(&[1000, 5000]);
        for r in rows {
            assert!(r.rel_error >= -1e-12, "cannot beat the optimum");
            // Eq. (4): the absolute gap is at most one item's comm on every
            // link plus one item's compute, so the relative error shrinks
            // like 1/n. At n = 1000 that is still ~1e-2 territory.
            assert!(r.rel_error < 1e-2, "n={}: rel error {}", r.n, r.rel_error);
            assert!(r.within_bound);
        }
    }

    #[test]
    fn error_shrinks_with_n() {
        let rows = heuristic_error(&[200, 20_000]);
        assert!(rows[1].rel_error <= rows[0].rel_error + 1e-9);
    }
}
