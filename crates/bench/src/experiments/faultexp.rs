//! Degraded-grid sweep: what failures cost on the paper's Table-1
//! platform (`docs/robustness.md`).
//!
//! Each scenario injects one deterministic fault plan into the balanced
//! scatter and runs it twice through the fault-tolerant simulator:
//! fault-**oblivious** (degraded — the static plan's fate) and
//! **recovered** (timeout/retry/re-plan). The row records what the
//! degraded run silently loses and what the recovery costs in makespan
//! over the fault-free baseline — the robustness analogue of the §5.2
//! model-vs-reality check.

use gs_gridsim::fault::{simulate_scatter_ft, FtScatterSim};
use gs_scatter::cost::{Platform, Processor};
use gs_scatter::fault::{FaultPlan, RecoveryConfig};
use gs_scatter::obs::IncidentKind;
use gs_scatter::paper::table1_platform;
use gs_scatter::planner::Planner;

/// One sweep scenario: a fault plan run in both modes.
#[derive(Debug, Clone)]
pub struct FaultSweepRow {
    /// Human-readable scenario id (also the `--faults` spec where one
    /// exists).
    pub scenario: String,
    /// Fault-free makespan of the same plan, seconds.
    pub clean_makespan: f64,
    /// Makespan of the fault-oblivious run, seconds.
    pub degraded_makespan: f64,
    /// Items the degraded run silently never computes.
    pub degraded_lost: u64,
    /// Makespan of the timeout/retry/re-plan run, seconds.
    pub recovered_makespan: f64,
    /// `recovered / clean − 1`, as a percentage.
    pub overhead_pct: f64,
    /// Incident counts of the recovered run: failures, retries,
    /// re-plans.
    pub faults: usize,
    /// Retry incidents of the recovered run.
    pub retries: usize,
    /// Re-plan incidents of the recovered run.
    pub replans: usize,
}

fn count(ft: &FtScatterSim, kind: IncidentKind) -> usize {
    ft.incidents.iter().filter(|i| i.kind == kind).count()
}

/// Runs one fault plan in both modes and assembles the row.
fn run_scenario(
    scenario: &str,
    view: &[&Processor],
    counts: &[usize],
    faults: &FaultPlan,
    clean: f64,
) -> FaultSweepRow {
    let degraded = simulate_scatter_ft(view, counts, faults, None)
        .expect("degraded run completes");
    let rc = RecoveryConfig::default();
    let recovered = simulate_scatter_ft(view, counts, faults, Some(&rc))
        .expect("recovered run completes");
    assert_eq!(recovered.lost_items, 0, "recovery computes everything");
    FaultSweepRow {
        scenario: scenario.to_string(),
        clean_makespan: clean,
        degraded_makespan: degraded.makespan,
        degraded_lost: degraded.lost_items,
        recovered_makespan: recovered.makespan,
        overhead_pct: (recovered.makespan / clean - 1.0) * 100.0,
        faults: count(&recovered, IncidentKind::Fault),
        retries: count(&recovered, IncidentKind::Retry),
        replans: count(&recovered, IncidentKind::Replan),
    }
}

/// The sweep: single crashes across the scatter order (first-served,
/// mid, last-served non-root — each mid-way through its own transfer),
/// a transient drop, a degraded and a severed link, a CPU slowdown,
/// and `seeds` pseudo-random fault mixes, all on the Table-1 grid with
/// `n` items.
pub fn fault_sweep(n: usize, seeds: &[u64]) -> (Platform, Vec<FaultSweepRow>) {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .plan(n)
        .expect("Table-1 platform plans cleanly");
    let view = platform.ordered(&plan.order);
    let counts = plan.counts_in_order();
    let names: Vec<&str> = view.iter().map(|p| p.name.as_str()).collect();
    let p = view.len();

    let clean = simulate_scatter_ft(&view, &counts, &FaultPlan::none(), None)
        .expect("fault-free run completes")
        .makespan;

    // Absolute start time of rank r's transfer in the fault-free run.
    let send_start = |r: usize| -> f64 {
        (0..r).map(|i| view[i].comm.eval(counts[i])).sum()
    };

    let mut rows = Vec::new();
    let spec = |s: &str| {
        FaultPlan::parse(s, &names, clean).expect("sweep specs parse")
    };

    // Crashes across the scatter order, each mid-own-transfer: the
    // first-served rank carries the biggest early block; the last
    // non-root rank fails when almost everything is already out.
    for &r in &[0, p / 2, p - 2] {
        let at = send_start(r) + view[r].comm.eval(counts[r]) * 0.5;
        let scenario = format!("crash:{r}@{at:.6}");
        rows.push(run_scenario(&scenario, &view, &counts, &spec(&scenario), clean));
    }
    // A transient drop on the first-served rank: retries absorb it, no
    // re-plan needed.
    rows.push(run_scenario("flaky:0:1", &view, &counts, &spec("flaky:0:1"), clean));
    // A degraded link (2× nominal stays under the κ = 3 timeout) and a
    // severed one (8× nominal times out every attempt).
    rows.push(run_scenario("link:0:2", &view, &counts, &spec("link:0:2"), clean));
    rows.push(run_scenario("link:0:8", &view, &counts, &spec("link:0:8"), clean));
    // A 2× CPU slowdown landing mid-run on the first-served rank — the
    // paper's "peak load on sekhmet" (Fig. 4) as a fault.
    rows.push(run_scenario("slow:0:2@50%", &view, &counts, &spec("slow:0:2@50%"), clean));
    // Seeded random fault mixes.
    for &seed in seeds {
        let faults = FaultPlan::seeded(seed, p, clean);
        rows.push(run_scenario(&format!("seed:{seed}"), &view, &counts, &faults, clean));
    }
    (platform, rows)
}

/// Times the residual exact-DP re-plan after losing the first-served
/// worker, cold (fresh planner, no cache) vs warm (a `PlanCache` primed
/// by the original full plan, exactly what a `FaultSession` holds when
/// a crash interrupts the first transfer). Dropping the first-served worker
/// leaves the whole remaining scatter order as a suffix of the primed
/// plane — the best case for column reuse, and the common one: the rank
/// currently receiving data is the one whose crash forces a re-plan.
///
/// Both plans are asserted bit-identical before the times are returned
/// as `(cold_secs, warm_secs)`.
pub fn replan_timing(n: usize) -> (f64, f64) {
    use gs_scatter::planner::{PlanCache, Strategy};
    use std::sync::Arc;
    use std::time::Instant;

    let platform = table1_platform();
    let cache = Arc::new(PlanCache::new());
    let full = Planner::new(platform.clone())
        .strategy(Strategy::Exact)
        .plan_cache(Arc::clone(&cache))
        .plan(n)
        .expect("Table-1 platform plans cleanly");
    let victim = full.order[0];
    assert_ne!(victim, platform.root(), "the root is never first-served");
    let root_name = platform.procs()[platform.root()].name.clone();
    let survivors: Vec<Processor> = platform
        .procs()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != victim)
        .map(|(_, pr)| pr.clone())
        .collect();
    let root = survivors.iter().position(|p| p.name == root_name).expect("root survives");
    let surv = Platform::new(survivors, root).expect("survivor platform is valid");
    // The victim's own block is lost mid-transfer: re-plan it plus
    // everything not yet sent (here: all of it, the worst case).
    let residual = n;

    let t = Instant::now();
    let cold = Planner::new(surv.clone())
        .strategy(Strategy::Exact)
        .plan(residual)
        .expect("cold re-plan");
    let cold_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let warm = Planner::new(surv)
        .strategy(Strategy::Exact)
        .plan_cache(Arc::clone(&cache))
        .plan(residual)
        .expect("warm re-plan");
    let warm_secs = t.elapsed().as_secs_f64();
    assert_eq!(warm.counts, cold.counts, "warm-start changed the plan");
    assert_eq!(
        warm.predicted_makespan.to_bits(),
        cold.predicted_makespan.to_bits(),
        "warm-start changed the makespan"
    );
    (cold_secs, warm_secs)
}

/// Machine-readable export (`BENCH_faults.json`), mirroring the
/// `BENCH_dp.json` conventions so the robustness story is comparable
/// PR-over-PR. `replan` carries the optional
/// [`replan_timing`] measurement as top-level
/// `replan_cold_secs`/`replan_warm_secs` fields (wall times, not gated
/// by `bench_gate`, which only compares `rows`).
pub fn fault_sweep_json(n: usize, rows: &[FaultSweepRow], replan: Option<(f64, f64)>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fault_sweep\",\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    if let Some((cold, warm)) = replan {
        out.push_str(&format!(
            "  \"replan_cold_secs\": {cold:.6}, \"replan_warm_secs\": {warm:.6},\n"
        ));
    }
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"clean_makespan\": {:.6}, \
             \"degraded_makespan\": {:.6}, \"degraded_lost\": {}, \
             \"recovered_makespan\": {:.6}, \"overhead_pct\": {:.3}, \
             \"faults\": {}, \"retries\": {}, \"replans\": {}}}{}\n",
            r.scenario,
            r.clean_makespan,
            r.degraded_makespan,
            r.degraded_lost,
            r.recovered_makespan,
            r.overhead_pct,
            r.faults,
            r.retries,
            r.replans,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_hold_at_small_scale() {
        let (_, rows) = fault_sweep(2_000, &[7]);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.recovered_makespan >= r.clean_makespan - 1e-9, "{}", r.scenario);
            assert!(r.overhead_pct >= -1e-9, "{}", r.scenario);
        }
        // A crash always costs the degraded run items and the recovered
        // run time; a transient drop is absorbed by retries alone.
        let crash = &rows[0];
        assert!(crash.degraded_lost > 0, "crash loses items when ignored");
        assert!(crash.replans >= 1, "crash triggers a re-plan");
        let flaky = rows.iter().find(|r| r.scenario == "flaky:0:1").unwrap();
        assert!(flaky.degraded_lost > 0, "one-shot send loses the block");
        assert_eq!(flaky.replans, 0, "retries absorb a transient drop");
        assert!(flaky.retries >= 1);
        // A mildly degraded link stays under the timeout: no incidents
        // beyond the stretched transfer, nothing lost.
        let link2 = rows.iter().find(|r| r.scenario == "link:0:2").unwrap();
        assert_eq!(link2.degraded_lost, 0);
        assert_eq!(link2.faults, 0);
        // A severed link is indistinguishable from a crash: re-planned.
        let link8 = rows.iter().find(|r| r.scenario == "link:0:8").unwrap();
        assert!(link8.replans >= 1);
        let json = fault_sweep_json(2_000, &rows, None);
        assert!(json.contains("\"bench\": \"fault_sweep\""));
        assert!(json.contains("\"scenario\": \"flaky:0:1\""));
    }
}
