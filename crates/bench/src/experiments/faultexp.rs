//! Degraded-grid sweep: what failures cost on the paper's Table-1
//! platform (`docs/robustness.md`).
//!
//! Each scenario injects one deterministic fault plan into the balanced
//! scatter and runs it twice through the fault-tolerant simulator:
//! fault-**oblivious** (degraded — the static plan's fate) and
//! **recovered** (timeout/retry/re-plan). The row records what the
//! degraded run silently loses and what the recovery costs in makespan
//! over the fault-free baseline — the robustness analogue of the §5.2
//! model-vs-reality check.

use gs_gridsim::fault::{simulate_scatter_ft, FtScatterSim};
use gs_scatter::cost::{Platform, Processor};
use gs_scatter::fault::{FaultPlan, RecoveryConfig};
use gs_scatter::obs::IncidentKind;
use gs_scatter::paper::table1_platform;
use gs_scatter::planner::Planner;

/// One sweep scenario: a fault plan run in both modes.
#[derive(Debug, Clone)]
pub struct FaultSweepRow {
    /// Human-readable scenario id (also the `--faults` spec where one
    /// exists).
    pub scenario: String,
    /// Fault-free makespan of the same plan, seconds.
    pub clean_makespan: f64,
    /// Makespan of the fault-oblivious run, seconds.
    pub degraded_makespan: f64,
    /// Items the degraded run silently never computes.
    pub degraded_lost: u64,
    /// Makespan of the timeout/retry/re-plan run, seconds.
    pub recovered_makespan: f64,
    /// `recovered / clean − 1`, as a percentage.
    pub overhead_pct: f64,
    /// Incident counts of the recovered run: failures, retries,
    /// re-plans.
    pub faults: usize,
    /// Retry incidents of the recovered run.
    pub retries: usize,
    /// Re-plan incidents of the recovered run.
    pub replans: usize,
}

fn count(ft: &FtScatterSim, kind: IncidentKind) -> usize {
    ft.incidents.iter().filter(|i| i.kind == kind).count()
}

/// Runs one fault plan in both modes and assembles the row.
fn run_scenario(
    scenario: &str,
    view: &[&Processor],
    counts: &[usize],
    faults: &FaultPlan,
    clean: f64,
) -> FaultSweepRow {
    let degraded = simulate_scatter_ft(view, counts, faults, None)
        .expect("degraded run completes");
    let rc = RecoveryConfig::default();
    let recovered = simulate_scatter_ft(view, counts, faults, Some(&rc))
        .expect("recovered run completes");
    assert_eq!(recovered.lost_items, 0, "recovery computes everything");
    FaultSweepRow {
        scenario: scenario.to_string(),
        clean_makespan: clean,
        degraded_makespan: degraded.makespan,
        degraded_lost: degraded.lost_items,
        recovered_makespan: recovered.makespan,
        overhead_pct: (recovered.makespan / clean - 1.0) * 100.0,
        faults: count(&recovered, IncidentKind::Fault),
        retries: count(&recovered, IncidentKind::Retry),
        replans: count(&recovered, IncidentKind::Replan),
    }
}

/// The sweep: single crashes across the scatter order (first-served,
/// mid, last-served non-root — each mid-way through its own transfer),
/// a transient drop, a degraded and a severed link, a CPU slowdown,
/// and `seeds` pseudo-random fault mixes, all on the Table-1 grid with
/// `n` items.
pub fn fault_sweep(n: usize, seeds: &[u64]) -> (Platform, Vec<FaultSweepRow>) {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .plan(n)
        .expect("Table-1 platform plans cleanly");
    let view = platform.ordered(&plan.order);
    let counts = plan.counts_in_order();
    let names: Vec<&str> = view.iter().map(|p| p.name.as_str()).collect();
    let p = view.len();

    let clean = simulate_scatter_ft(&view, &counts, &FaultPlan::none(), None)
        .expect("fault-free run completes")
        .makespan;

    // Absolute start time of rank r's transfer in the fault-free run.
    let send_start = |r: usize| -> f64 {
        (0..r).map(|i| view[i].comm.eval(counts[i])).sum()
    };

    let mut rows = Vec::new();
    let spec = |s: &str| {
        FaultPlan::parse(s, &names, clean).expect("sweep specs parse")
    };

    // Crashes across the scatter order, each mid-own-transfer: the
    // first-served rank carries the biggest early block; the last
    // non-root rank fails when almost everything is already out.
    for &r in &[0, p / 2, p - 2] {
        let at = send_start(r) + view[r].comm.eval(counts[r]) * 0.5;
        let scenario = format!("crash:{r}@{at:.6}");
        rows.push(run_scenario(&scenario, &view, &counts, &spec(&scenario), clean));
    }
    // A transient drop on the first-served rank: retries absorb it, no
    // re-plan needed.
    rows.push(run_scenario("flaky:0:1", &view, &counts, &spec("flaky:0:1"), clean));
    // A degraded link (2× nominal stays under the κ = 3 timeout) and a
    // severed one (8× nominal times out every attempt).
    rows.push(run_scenario("link:0:2", &view, &counts, &spec("link:0:2"), clean));
    rows.push(run_scenario("link:0:8", &view, &counts, &spec("link:0:8"), clean));
    // A 2× CPU slowdown landing mid-run on the first-served rank — the
    // paper's "peak load on sekhmet" (Fig. 4) as a fault.
    rows.push(run_scenario("slow:0:2@50%", &view, &counts, &spec("slow:0:2@50%"), clean));
    // Seeded random fault mixes.
    for &seed in seeds {
        let faults = FaultPlan::seeded(seed, p, clean);
        rows.push(run_scenario(&format!("seed:{seed}"), &view, &counts, &faults, clean));
    }
    (platform, rows)
}

/// Machine-readable export (`BENCH_faults.json`), mirroring the
/// `BENCH_dp.json` conventions so the robustness story is comparable
/// PR-over-PR.
pub fn fault_sweep_json(n: usize, rows: &[FaultSweepRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fault_sweep\",\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"n\": {n},\n  \"rows\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"clean_makespan\": {:.6}, \
             \"degraded_makespan\": {:.6}, \"degraded_lost\": {}, \
             \"recovered_makespan\": {:.6}, \"overhead_pct\": {:.3}, \
             \"faults\": {}, \"retries\": {}, \"replans\": {}}}{}\n",
            r.scenario,
            r.clean_makespan,
            r.degraded_makespan,
            r.degraded_lost,
            r.recovered_makespan,
            r.overhead_pct,
            r.faults,
            r.retries,
            r.replans,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_hold_at_small_scale() {
        let (_, rows) = fault_sweep(2_000, &[7]);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.recovered_makespan >= r.clean_makespan - 1e-9, "{}", r.scenario);
            assert!(r.overhead_pct >= -1e-9, "{}", r.scenario);
        }
        // A crash always costs the degraded run items and the recovered
        // run time; a transient drop is absorbed by retries alone.
        let crash = &rows[0];
        assert!(crash.degraded_lost > 0, "crash loses items when ignored");
        assert!(crash.replans >= 1, "crash triggers a re-plan");
        let flaky = rows.iter().find(|r| r.scenario == "flaky:0:1").unwrap();
        assert!(flaky.degraded_lost > 0, "one-shot send loses the block");
        assert_eq!(flaky.replans, 0, "retries absorb a transient drop");
        assert!(flaky.retries >= 1);
        // A mildly degraded link stays under the timeout: no incidents
        // beyond the stretched transfer, nothing lost.
        let link2 = rows.iter().find(|r| r.scenario == "link:0:2").unwrap();
        assert_eq!(link2.degraded_lost, 0);
        assert_eq!(link2.faults, 0);
        // A severed link is indistinguishable from a crash: re-planned.
        let link8 = rows.iter().find(|r| r.scenario == "link:0:8").unwrap();
        assert!(link8.replans >= 1);
        let json = fault_sweep_json(2_000, &rows);
        assert!(json.contains("\"bench\": \"fault_sweep\""));
        assert!(json.contains("\"scenario\": \"flaky:0:1\""));
    }
}
