//! Experiment implementations, one module per paper artifact.

pub mod ablation;
pub mod dynamicexp;
pub mod faultexp;
pub mod figures;
pub mod installmentexp;
pub mod gatherexp;
pub mod multiport;
pub mod obsexp;
pub mod ordering;
pub mod roots;
pub mod runtimes;
pub mod serveexp;
pub mod simexp;
pub mod tomo;
