//! Observability three-way experiment: the same plan runs through the
//! planner's analytic Eq. (1) prediction, the gs-gridsim discrete-event
//! simulator, and a real gs-minimpi world, each emitting a trace in the
//! shared schema (`docs/observability.md`). The experiment exports all
//! three as JSON/CSV and reports how far the executed run drifted from
//! the prediction — the paper's "model vs reality" check of §5.2 in
//! trace form.

use gs_gridsim::export::{write_trace_csv, write_trace_json};
use gs_gridsim::sim::simulate_plan;
use gs_minimpi::{executed_trace, run_world, TimeModel, WorldConfig};
use gs_scatter::obs::{Trace, TraceSummary};
use gs_scatter::ordering::OrderPolicy;
use gs_scatter::paper::table1_platform;
use gs_scatter::planner::{Plan, Planner, Strategy};

/// The three traces of one plan, plus their derived summaries.
#[derive(Debug)]
pub struct ObsComparison {
    /// The plan all three paths execute.
    pub plan: Plan,
    /// Planner's analytic schedule (source `predicted`).
    pub predicted: Trace,
    /// Discrete-event simulation (source `simulated`).
    pub simulated: Trace,
    /// Real minimpi run, threads + virtual clocks (source `executed`).
    pub executed: Trace,
    /// `summarize()` of each trace, same order.
    pub summaries: [TraceSummary; 3],
    /// Largest |finish(executed) − finish(predicted)| over all ranks, s.
    pub max_drift: f64,
}

/// Plans `n` items on the Table-1 grid and runs all three execution
/// paths, returning their traces and summaries.
pub fn observe_three_ways(n: usize, item_bytes: u64) -> ObsComparison {
    assert!(item_bytes > 0, "items need a wire size");
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .order_policy(OrderPolicy::DescendingBandwidth)
        .plan(n)
        .expect("Table-1 platform plans cleanly");
    let names: Vec<&str> = plan
        .order
        .iter()
        .map(|&i| platform.procs()[i].name.as_str())
        .collect();
    let counts = plan.counts_in_order();

    let predicted = plan.predicted_trace(&platform, item_bytes);
    let simulated = simulate_plan(&platform, &plan, &[]).trace(&names, &counts, item_bytes);

    // Executed: world rank r plays scatter position r (root last), so the
    // runtime's rank-ordered single-port scatterv realizes the plan.
    let model = TimeModel::from_platform(&platform, item_bytes as usize).reordered(&plan.order);
    let p = platform.len();
    let root = p - 1;
    let counts_bytes: Vec<usize> = counts.iter().map(|c| c * item_bytes as usize).collect();
    let total_bytes: usize = counts_bytes.iter().sum();
    let ib = item_bytes as usize;
    let records = run_world(p, WorldConfig::with_time(model), move |c| {
        c.enable_tracing();
        let buf = vec![0u8; total_bytes];
        let mine = c.scatterv(root, if c.rank() == root { Some(&buf) } else { None }, &counts_bytes);
        c.model_compute(mine.len() / ib);
        c.take_trace()
    });
    let executed = executed_trace(&names, item_bytes, &records);

    for t in [&predicted, &simulated, &executed] {
        t.validate().expect("every producer emits a valid trace");
    }
    let summaries = [
        TraceSummary::from_trace(&predicted),
        TraceSummary::from_trace(&simulated),
        TraceSummary::from_trace(&executed),
    ];
    let max_drift = summaries[0]
        .ranks
        .iter()
        .zip(&summaries[2].ranks)
        .map(|(a, b)| (a.finish - b.finish).abs())
        .fold(0.0f64, f64::max);
    ObsComparison { plan, predicted, simulated, executed, summaries, max_drift }
}

/// Writes the three traces as `{predicted,simulated,executed}.{json,csv}`
/// under `dir`, creating it if needed. Returns the file count (6).
pub fn export_traces(cmp: &ObsComparison, dir: &std::path::Path) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0;
    for trace in [&cmp.predicted, &cmp.simulated, &cmp.executed] {
        let stem = trace.source.as_str();
        write_trace_json(dir.join(format!("{stem}.json")), trace)?;
        write_trace_csv(dir.join(format!("{stem}.csv")), trace)?;
        written += 2;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_paths_tell_one_story() {
        let cmp = observe_three_ways(20_000, 8);
        let [p, s, e] = &cmp.summaries;
        assert_eq!(p.makespan, s.makespan, "DES must equal the analytic schedule exactly");
        assert!(cmp.max_drift <= 1e-9 * p.makespan.max(1.0), "drift {}", cmp.max_drift);
        assert!((e.makespan - p.makespan).abs() <= 1e-9 * p.makespan);
        // Byte conservation holds in every path.
        for sum in [p, s, e] {
            assert_eq!(sum.total_bytes, 20_000 * 8);
        }
    }

    #[test]
    fn export_writes_all_six_files() {
        let cmp = observe_three_ways(500, 8);
        let dir = std::env::temp_dir().join("gs-obsexp-test");
        let n = export_traces(&cmp, &dir).unwrap();
        assert_eq!(n, 6);
        let json = std::fs::read_to_string(dir.join("executed.json")).unwrap();
        let back = gs_scatter::obs::json::trace_from_json(&json).unwrap();
        assert_eq!(back, cmp.executed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
