//! Determinism: the virtual-time runtime must produce bit-identical
//! clocks and results across repeated runs, regardless of OS scheduling.
//! This is what makes the emulation a *reproduction* instead of a demo.

use gs_minimpi::{run_world, Tag, TimeModel, WorldConfig};
use gs_scatter::cost::CostFn;

fn busy_program(p: usize) -> Vec<(f64, u64)> {
    let model = TimeModel {
        link: (0..p)
            .map(|i| {
                if i == p - 1 {
                    CostFn::Zero
                } else {
                    CostFn::Linear { slope: 1e-6 * (i + 1) as f64 }
                }
            })
            .collect(),
        compute: (0..p)
            .map(|i| CostFn::Linear { slope: 1e-3 * (i + 1) as f64 })
            .collect(),
    };
    run_world(p, WorldConfig::with_time(model), |comm| {
        let root = comm.size() - 1;
        let me = comm.rank();
        // A few mixed rounds: scatter, compute, reduce, all-to-all chatter.
        let mut acc: u64 = 0;
        for round in 0..4u64 {
            let data: Vec<u64> = (0..(64 * comm.size()) as u64).collect();
            let counts = vec![64usize; comm.size()];
            let mine = comm.scatterv(
                root,
                if me == root { Some(&data[..]) } else { None },
                &counts,
            );
            comm.model_compute(mine.len());
            acc = acc.wrapping_add(mine.iter().sum::<u64>().wrapping_mul(round + 1));
            let total = comm.allreduce(acc, |a, b| a.wrapping_add(b));
            acc = acc.wrapping_add(total >> 3);
            // Point-to-point ring with per-rank tags.
            let next = (me + 1) % comm.size();
            let prev = (me + comm.size() - 1) % comm.size();
            comm.send::<u64>(next, Tag::user(round), &[acc]);
            let from_prev = comm.recv::<u64>(prev, Tag::user(round))[0];
            acc = acc.wrapping_add(from_prev);
            comm.barrier();
        }
        (comm.now(), acc)
    })
}

#[test]
fn clocks_and_results_are_bit_identical_across_runs() {
    let a = busy_program(6);
    for _ in 0..4 {
        let b = busy_program(6);
        assert_eq!(a, b, "runtime must be deterministic");
    }
}

#[test]
fn determinism_holds_under_contention() {
    // Run several worlds concurrently to shake out scheduling effects.
    let baseline = busy_program(4);
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(|| busy_program(4)))
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), baseline);
    }
}
