//! The virtual-time model: deterministic replay of grid heterogeneity.

use gs_scatter::cost::CostFn;

/// Cost model for virtual time.
///
/// `link[i]` maps a *byte count* to the seconds the single-port sender
/// spends transferring to rank `i`; `compute[i]` maps an *item count* to
/// the seconds rank `i` spends computing (used by
/// [`crate::Comm::model_compute`]).
///
/// Building one from a [`gs_scatter::cost::Platform`] whose cost functions
/// are per-item: scale the comm slope by `1 / item_size_bytes` — see
/// [`TimeModel::from_platform`].
#[derive(Debug, Clone)]
pub struct TimeModel {
    /// Per-rank transfer cost, bytes → seconds.
    pub link: Vec<CostFn>,
    /// Per-rank compute cost, items → seconds.
    pub compute: Vec<CostFn>,
}

impl TimeModel {
    /// A model where communication is free and compute costs are given.
    pub fn compute_only(compute: Vec<CostFn>) -> Self {
        let link = compute.iter().map(|_| CostFn::Zero).collect();
        TimeModel { link, compute }
    }

    /// Derives a model from a planner platform whose cost functions are
    /// per *item*, given the wire size of one item in bytes. Ranks map to
    /// platform indices.
    pub fn from_platform(platform: &gs_scatter::cost::Platform, item_bytes: usize) -> Self {
        assert!(item_bytes > 0);
        let link = platform
            .procs()
            .iter()
            .map(|p| scale_to_bytes(&p.comm, item_bytes))
            .collect();
        let compute = platform.procs().iter().map(|p| p.comp.clone()).collect();
        TimeModel { link, compute }
    }

    /// A model with ranks permuted: new rank `i` gets the costs of old
    /// rank `order[i]`. This is how a planner's scatter order (a
    /// permutation of platform indices, root last) becomes a world where
    /// scatter-by-rank-order realizes the planned schedule.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..len`.
    pub fn reordered(&self, order: &[usize]) -> Self {
        assert_eq!(order.len(), self.len(), "order must cover every rank");
        let mut seen = vec![false; self.len()];
        for &i in order {
            assert!(!seen[i], "rank {i} appears twice in the order");
            seen[i] = true;
        }
        TimeModel {
            link: order.iter().map(|&i| self.link[i].clone()).collect(),
            compute: order.iter().map(|&i| self.compute[i].clone()).collect(),
        }
    }

    /// Number of ranks the model covers.
    pub fn len(&self) -> usize {
        self.link.len()
    }

    /// `true` iff the model covers no ranks.
    pub fn is_empty(&self) -> bool {
        self.link.is_empty()
    }

    /// Transfer seconds for `bytes` to rank `dest`.
    pub fn link_time(&self, dest: usize, bytes: usize) -> f64 {
        self.link[dest].eval(bytes)
    }

    /// Compute seconds for `items` on rank `rank`.
    pub fn compute_time(&self, rank: usize, items: usize) -> f64 {
        self.compute[rank].eval(items)
    }
}

/// Converts a per-item cost function into a per-byte one.
fn scale_to_bytes(per_item: &CostFn, item_bytes: usize) -> CostFn {
    match per_item {
        CostFn::Zero => CostFn::Zero,
        CostFn::Linear { slope } => CostFn::Linear { slope: slope / item_bytes as f64 },
        CostFn::Affine { intercept, slope } => CostFn::Affine {
            intercept: *intercept,
            slope: slope / item_bytes as f64,
        },
        other => {
            // Tabulated / custom: wrap with a byte → item conversion.
            let f = other.clone();
            let ib = item_bytes;
            CostFn::Custom(std::sync::Arc::new(move |bytes| f.eval(bytes / ib)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scatter::cost::{Platform, Processor};

    #[test]
    fn from_platform_scales_comm_to_bytes() {
        let plat = Platform::new(
            vec![
                Processor::linear("root", 0.0, 1.0),
                Processor::linear("w", 8.0, 2.0), // 8 s per item
            ],
            0,
        )
        .unwrap();
        let tm = TimeModel::from_platform(&plat, 8); // 8-byte items
        assert_eq!(tm.link_time(1, 8), 8.0); // one item
        assert_eq!(tm.link_time(1, 16), 16.0); // two items
        assert_eq!(tm.link_time(0, 1_000_000), 0.0); // root link is free
        assert_eq!(tm.compute_time(1, 3), 6.0);
    }

    #[test]
    fn compute_only_model() {
        let tm = TimeModel::compute_only(vec![
            CostFn::Linear { slope: 1.0 },
            CostFn::Linear { slope: 2.0 },
        ]);
        assert_eq!(tm.link_time(1, 12345), 0.0);
        assert_eq!(tm.compute_time(1, 10), 20.0);
        assert_eq!(tm.len(), 2);
    }

    #[test]
    fn reordered_permutes_ranks() {
        let tm = TimeModel::compute_only(vec![
            CostFn::Linear { slope: 1.0 },
            CostFn::Linear { slope: 2.0 },
            CostFn::Linear { slope: 3.0 },
        ]);
        let r = tm.reordered(&[2, 0, 1]);
        assert_eq!(r.compute_time(0, 1), 3.0);
        assert_eq!(r.compute_time(1, 1), 1.0);
        assert_eq!(r.compute_time(2, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn reordered_rejects_non_permutations() {
        TimeModel::compute_only(vec![CostFn::Zero, CostFn::Zero]).reordered(&[0, 0]);
    }

    #[test]
    fn tabulated_scaling() {
        let plat = Platform::new(
            vec![Processor {
                name: "t".into(),
                comm: CostFn::table(vec![(10, 5.0)]),
                comp: CostFn::Zero,
            }],
            0,
        )
        .unwrap();
        let tm = TimeModel::from_platform(&plat, 4);
        // 40 bytes = 10 items => 5 s.
        assert_eq!(tm.link_time(0, 40), 5.0);
    }
}
