//! Fault-tolerant scatter on the minimpi runtime: the executable twin of
//! `gs_gridsim::fault::simulate_scatter_ft`.
//!
//! The root drives the same [`FaultSession`] oracle the simulator uses
//! — same ranks, same instants, same nominal `Tcomm` values (evaluated
//! item-based from [`FtConfig::procs`], *not* byte-scaled through the
//! world's [`crate::TimeModel`]) — so the executed schedule is
//! **bit-identical** to the simulated one: every delivery interval,
//! retry backoff, re-plan instant and incident string matches exactly.
//! The difference is that here real bytes actually move between rank
//! threads, and each rank computes on the block it physically received.
//!
//! Failed attempts and timeouts exist only in virtual time (the root's
//! clock advances; no message is sent). Liveness of the *threads* is
//! never at stake: after the last round the root sends every rank an
//! out-of-band control message carrying its delivery count, so even a
//! "crashed" rank's thread unblocks and returns the blocks it received
//! before its virtual death. Control messages carry timestamp 0 and are
//! excluded from clocks and traces.

use gs_scatter::cost::Processor;
use gs_scatter::fault::{
    outcome_incidents, replan_residual_with, take_items, FaultPlan, FaultSession, RecoveryConfig,
};
use gs_scatter::obs::{Incident, IncidentKind, Trace};

use crate::comm::{op, Comm};
use crate::datum::{decode, encode, Datum};
use crate::message::{Message, Tag};
use crate::trace::{executed_trace, CommOp, CommRecord};

/// Configuration of a fault-tolerant scatter world.
///
/// Ranks are scatter positions: rank `i` is the `i`-th processor served
/// by the single-port root, and the **root is rank `size − 1`** (the
/// paper's root-last order). `procs` lists the processors in that same
/// order with *item-based* cost functions (as planned by
/// [`gs_scatter::planner::Planner`]): `comm.eval(x)`/`comp.eval(x)` are
/// seconds for `x` items, exactly the numbers Eq. (1) uses.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// What goes wrong (validated against the world size at scatter
    /// time).
    pub faults: FaultPlan,
    /// `Some` = recovered mode (timeout/retry/re-plan); `None` =
    /// degraded fault-oblivious mode.
    pub recovery: Option<RecoveryConfig>,
    /// Processors in rank (= scatter) order, root last.
    pub procs: Vec<Processor>,
    /// *Modeled* wire size of one item, used for the byte counts in
    /// trace records — independent of the physical `T::WIDTH` of the
    /// payload, so executed traces match the simulator's byte
    /// accounting for any `--item-bytes`.
    pub item_bytes: u64,
}

impl Comm {
    /// Takes the incidents recorded by fault-tolerant collectives on
    /// this rank (non-empty only on the root).
    pub fn take_incidents(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.incidents)
    }

    /// Sends `payload` recording the explicit port interval
    /// `[start, end]` instead of deriving it from the time model, and
    /// `bytes` as the modeled wire size; the message timestamp is
    /// `end`. The caller owns the clock.
    fn send_raw_at(
        &mut self,
        dest: usize,
        tag: Tag,
        payload: Vec<u8>,
        bytes: usize,
        start: f64,
        end: f64,
    ) {
        assert!(dest < self.size, "destination {dest} out of range");
        if let Some(t) = &mut self.trace {
            t.push(CommRecord { op: CommOp::Send, peer: dest, bytes, start, end });
        }
        let msg = Message { src: self.rank, tag, timestamp: end, payload };
        self.senders[dest]
            .send(msg)
            .unwrap_or_else(|_| panic!("rank {dest} hung up (panicked?)"));
    }

    /// Sends an out-of-band control message: timestamp 0, no clock
    /// advance, no trace record.
    fn send_ctrl(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) {
        let msg = Message { src: self.rank, tag, timestamp: 0.0, payload };
        self.senders[dest]
            .send(msg)
            .unwrap_or_else(|_| panic!("rank {dest} hung up (panicked?)"));
    }

    /// Receives a control message: no clock synchronization, no trace
    /// record.
    fn recv_ctrl(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        self.match_message(src, tag).payload
    }

    /// Fault-tolerant `MPI_Scatterv` (root = rank `size − 1`).
    ///
    /// The root sends block `r` of `sendbuf` to rank `r` in rank order
    /// under the fault plan of `config`; in recovered mode, undelivered
    /// items are re-planned over the survivors until everything is
    /// placed. Every rank returns the items it actually received
    /// (possibly empty if it crashed early or the run is degraded;
    /// possibly more than its original block after a re-plan).
    ///
    /// # Panics
    /// Panics on the root if `sendbuf` is missing or too short, if the
    /// fault plan is invalid for this world, or if the re-plan fails
    /// (e.g. a strategy/cost-model mismatch).
    pub fn scatterv_ft<T: Datum>(
        &mut self,
        config: &FtConfig,
        sendbuf: Option<&[T]>,
        counts: &[usize],
    ) -> Vec<T> {
        assert_eq!(counts.len(), self.size, "one count per rank");
        assert_eq!(config.procs.len(), self.size, "one processor per rank");
        let root = self.size - 1;
        let seq = self.next_seq();
        let data_tag = Tag::collective(op::FT_SCATTER, seq);
        let ctrl_tag = Tag::collective(op::FT_CTRL, seq);

        if self.rank != root {
            // Delivery count first; any data messages that raced ahead
            // wait in `pending` and are drained in arrival order.
            let m = decode::<u64>(&self.recv_ctrl(root, ctrl_tag))[0];
            let mut mine = Vec::new();
            for _ in 0..m {
                mine.extend(self.recv::<T>(root, data_tag));
            }
            return mine;
        }

        let buf = sendbuf.expect("root must provide the send buffer");
        let total: usize = counts.iter().sum();
        assert!(buf.len() >= total, "send buffer too short: {} < {total}", buf.len());
        config
            .faults
            .validate(self.size)
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));

        let mut session = FaultSession::new(&config.faults, self.size);
        let mut delivered_msgs = vec![0u64; self.size];
        let mut own: Vec<T> = Vec::new();
        let mut pool: Vec<(u64, u64)> = Vec::new();
        let mut t = self.clock;

        // Round 0: the planned blocks, contiguous in rank order.
        let mut offset = 0u64;
        let mut round: Vec<(usize, Vec<(u64, u64)>)> = counts
            .iter()
            .enumerate()
            .map(|(rank, &c)| {
                let lo = offset;
                offset += c as u64;
                (rank, if c == 0 { Vec::new() } else { vec![(lo, offset)] })
            })
            .collect();

        loop {
            for (rank, ranges) in round.drain(..) {
                if ranges.is_empty() {
                    continue;
                }
                let items: u64 = ranges.iter().map(|&(lo, hi)| hi - lo).sum();
                let nominal = config.procs[rank].comm.eval(items as usize);
                let out = session.send(rank, t, nominal, config.recovery.as_ref());
                self.incidents.extend(outcome_incidents(
                    rank,
                    items,
                    &config.procs[rank].name,
                    &out,
                ));
                t = out.port_free;
                match out.delivered {
                    Some((start, end)) => {
                        delivered_msgs[rank] += 1;
                        let mut payload = Vec::with_capacity(items as usize * T::WIDTH);
                        for &(lo, hi) in &ranges {
                            payload.extend(encode(&buf[lo as usize..hi as usize]));
                        }
                        let wire = (items * config.item_bytes) as usize;
                        if rank == root {
                            // The root keeps its share: traced like the
                            // plain scatterv's self-send, at the oracle's
                            // delivery instant.
                            if let Some(tr) = &mut self.trace {
                                tr.push(CommRecord {
                                    op: CommOp::Send,
                                    peer: root,
                                    bytes: wire,
                                    start,
                                    end,
                                });
                            }
                            own.extend(decode::<T>(&payload));
                        } else {
                            self.send_raw_at(rank, data_tag, payload, wire, start, end);
                        }
                    }
                    None if config.recovery.is_some() => pool.extend(ranges),
                    None => {} // degraded mode: the block is simply lost
                }
            }
            if pool.is_empty() {
                break;
            }
            let rc = config.recovery.as_ref().expect("pool only fills in recovered mode");
            let residual: u64 = pool.iter().map(|&(lo, hi)| hi - lo).sum();
            let alive: Vec<bool> = (0..self.size).map(|r| !session.is_dead(r)).collect();
            let view: Vec<&Processor> = config.procs.iter().collect();
            // Warm-start later re-plans from this session's plan cache
            // (bit-identical to from-scratch — the simulator does the
            // same, keeping the two schedules in lockstep).
            let rp = replan_residual_with(
                &view,
                &alive,
                residual,
                rc.replan_strategy,
                Some(session.plan_cache()),
            )
            .unwrap_or_else(|e| panic!("re-plan failed: {e}"));
            self.incidents.push(Incident {
                t,
                kind: IncidentKind::Replan,
                rank: root,
                items: residual,
                info: format!(
                    "redistributing {residual} undelivered items over {} survivors",
                    rp.positions.len()
                ),
            });
            for (&pos, &c) in rp.positions.iter().zip(&rp.counts) {
                if c > 0 {
                    round.push((pos, take_items(&mut pool, c)));
                }
            }
            debug_assert!(pool.is_empty(), "re-plan must drain the pool");
        }

        self.clock = self.clock.max(t);
        for (r, &delivered) in delivered_msgs.iter().enumerate() {
            if r != root {
                self.send_ctrl(r, ctrl_tag, encode(&[delivered]));
            }
        }
        own
    }

    /// Advances the clock by the *faulted* compute time for `items` on
    /// this rank: the item-based `Tcomp` from [`FtConfig::procs`],
    /// stretched by any slowdown fault in effect
    /// ([`FaultPlan::stretched_compute`]). Records a `Compute` trace
    /// record when tracing is enabled; a no-op for zero items (matching
    /// the simulator, which emits no compute phase for empty ranks).
    pub fn model_compute_ft(&mut self, config: &FtConfig, items: usize) {
        if items == 0 {
            return;
        }
        let start = self.clock;
        let nominal = config.procs[self.rank].comp.eval(items);
        self.clock += config.faults.stretched_compute(self.rank, start, nominal);
        let (rank, end) = (self.rank, self.clock);
        if let Some(t) = &mut self.trace {
            t.push(CommRecord { op: CommOp::Compute, peer: rank, bytes: 0, start, end });
        }
    }
}

/// Merges a fault-tolerant world's records into an executed
/// observability [`Trace`], labelled `"recovered"` or `"degraded"` and
/// carrying the root's incident stream (see
/// [`executed_trace`] for the event conventions).
pub fn executed_trace_ft(
    names: &[&str],
    item_bytes: u64,
    records: &[Vec<CommRecord>],
    incidents: Vec<Incident>,
    recovered: bool,
) -> Trace {
    let mut trace = executed_trace(names, item_bytes, records);
    trace.label = Some(if recovered { "recovered" } else { "degraded" }.to_string());
    trace.incidents = incidents;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_world, WorldConfig};
    use gs_scatter::fault::{Fault, FaultKind};

    fn procs() -> Vec<Processor> {
        vec![
            Processor::linear("a", 1.0, 2.0),
            Processor::linear("b", 2.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ]
    }

    /// Runs the ft scatter world and returns (per-rank items, trace).
    fn run_ft(
        faults: FaultPlan,
        recovery: Option<RecoveryConfig>,
        counts: [usize; 3],
    ) -> (Vec<Vec<u64>>, Trace) {
        let config = FtConfig { faults, recovery, procs: procs(), item_bytes: 8 };
        let recovered = config.recovery.is_some();
        let out = run_world(3, WorldConfig::default(), move |c| {
            c.enable_tracing();
            let data: Vec<u64> = (0..counts.iter().sum::<usize>() as u64).collect();
            let mine = c.scatterv_ft(
                &config,
                if c.rank() == 2 { Some(&data) } else { None },
                &counts,
            );
            c.model_compute_ft(&config, mine.len());
            (mine, c.take_trace(), c.take_incidents())
        });
        let records: Vec<_> = out.iter().map(|(_, r, _)| r.clone()).collect();
        let incidents = out[2].2.clone();
        let trace = executed_trace_ft(&["a", "b", "root"], 8, &records, incidents, recovered);
        (out.into_iter().map(|(m, _, _)| m).collect(), trace)
    }

    #[test]
    fn fault_free_ft_scatter_matches_plain_model() {
        let (items, trace) = run_ft(FaultPlan::none(), None, [3, 2, 1]);
        assert_eq!(items[0], vec![0, 1, 2]);
        assert_eq!(items[1], vec![3, 4]);
        assert_eq!(items[2], vec![5]);
        trace.validate().unwrap();
        let s = trace.summarize().unwrap();
        // Same schedule as the analytic Eq. (1) timeline: a receives
        // [0,3] computes 6 → 9; b receives [3,7] computes 2 → 9.
        assert_eq!(s.makespan, 9.0);
        assert_eq!(s.total_bytes, 6 * 8);
        assert_eq!(trace.label.as_deref(), Some("degraded"));
    }

    #[test]
    fn crashed_rank_thread_still_returns() {
        let faults =
            FaultPlan { faults: vec![Fault { rank: 0, kind: FaultKind::Crash { at: 1.0 } }] };
        let (items, trace) = run_ft(faults, Some(RecoveryConfig::default()), [3, 2, 1]);
        // Rank 0 received nothing but its thread completed cleanly.
        assert!(items[0].is_empty());
        // Every item landed somewhere among the survivors.
        let mut all: Vec<u64> = items.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
        trace.validate().unwrap();
        let s = trace.summarize().unwrap();
        assert_eq!(s.total_bytes, 6 * 8);
        assert!(s.faults > 0 && s.replans == 1);
        assert_eq!(trace.label.as_deref(), Some("recovered"));
    }

    #[test]
    fn executed_matches_simulated_bit_for_bit() {
        use gs_gridsim::fault::simulate_scatter_ft;
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = [3usize, 2, 1];
        // Crash + transient + slowdown, non-borderline times.
        let faults = FaultPlan {
            faults: vec![
                Fault { rank: 0, kind: FaultKind::Crash { at: 1.0 } },
                Fault { rank: 1, kind: FaultKind::Transient { failures: 1 } },
                Fault { rank: 2, kind: FaultKind::Slowdown { start: 20.0, factor: 2.0 } },
            ],
        };
        for recovery in [None, Some(RecoveryConfig::default())] {
            let sim = simulate_scatter_ft(&view, &counts, &faults, recovery.as_ref()).unwrap();
            let sim_trace = sim.trace(&["a", "b", "root"], 8);
            let (_, exec_trace) = run_ft(faults.clone(), recovery, counts);
            exec_trace.validate().unwrap();
            // Same label, same incident stream (instants and strings),
            // same per-rank schedule to the last bit.
            assert_eq!(exec_trace.label, sim_trace.label);
            assert_eq!(exec_trace.incidents, sim_trace.incidents);
            let (se, ss) =
                (exec_trace.summarize().unwrap(), sim_trace.summarize().unwrap());
            assert_eq!(se.makespan, ss.makespan);
            assert_eq!(se.total_bytes, ss.total_bytes);
            for (re, rs) in se.ranks.iter().zip(&ss.ranks) {
                assert_eq!(re.recv, rs.recv, "recv of {}", rs.name);
                assert_eq!(re.send, rs.send, "send of {}", rs.name);
                assert_eq!(re.compute, rs.compute, "compute of {}", rs.name);
                assert_eq!(re.finish, rs.finish, "finish of {}", rs.name);
                assert_eq!(re.bytes_in, rs.bytes_in, "bytes of {}", rs.name);
            }
        }
    }

    #[test]
    fn degraded_run_drops_flaky_block() {
        let faults = FaultPlan {
            faults: vec![Fault { rank: 1, kind: FaultKind::Transient { failures: 1 } }],
        };
        let (items, trace) = run_ft(faults, None, [3, 2, 1]);
        assert_eq!(items[0], vec![0, 1, 2]);
        assert!(items[1].is_empty(), "the flaky rank's block is lost silently");
        assert_eq!(items[2], vec![5]);
        let s = trace.summarize().unwrap();
        // Only the delivered bytes show up on the wire.
        assert_eq!(s.total_bytes, 4 * 8);
    }
}
