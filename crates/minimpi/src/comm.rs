//! The per-rank communicator: point-to-point primitives, virtual clock,
//! and the collectives built on top of them.

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use gs_scatter::obs::span;

use crate::datum::{decode, encode, Datum};
use crate::message::{Message, Tag};
use crate::time::TimeModel;

/// Opcode space for collective tags.
pub(crate) mod op {
    pub const BARRIER_UP: u8 = 1;
    pub const BARRIER_DOWN: u8 = 2;
    pub const BCAST: u8 = 3;
    pub const SCATTER: u8 = 4;
    pub const GATHER: u8 = 5;
    pub const REDUCE: u8 = 6;
    pub const ALLGATHER: u8 = 7;
    pub const ALLTOALL: u8 = 8;
    pub const SCAN: u8 = 9;
    /// Data blocks of the fault-tolerant scatter ([`crate::ft`]).
    pub const FT_SCATTER: u8 = 10;
    /// Out-of-band control messages of the fault-tolerant scatter
    /// (delivery counts; no virtual time, no trace).
    pub const FT_CTRL: u8 = 11;
}

/// A rank's handle on the world: identity, mailbox, virtual clock.
///
/// One `Comm` lives on each rank thread; it is **not** shareable — all
/// operations take `&mut self`, mirroring the fact that an MPI rank is a
/// single sequential process.
pub struct Comm {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) senders: Vec<Sender<Message>>,
    pub(crate) inbox: Receiver<Message>,
    /// Messages received but not yet matched by a `recv`.
    pub(crate) pending: Vec<Message>,
    /// Virtual clock, seconds.
    pub(crate) clock: f64,
    /// Optional heterogeneity model (shared, immutable).
    pub(crate) model: Option<Arc<TimeModel>>,
    /// Collective sequence number (tags of successive collectives differ).
    pub(crate) coll_seq: u64,
    /// Communication trace (only populated when tracing is enabled).
    pub(crate) trace: Option<Vec<crate::trace::CommRecord>>,
    /// Fault/retry/replan incidents recorded by the fault-tolerant
    /// scatter (populated on the root; see [`crate::ft`]).
    pub(crate) incidents: Vec<gs_scatter::obs::Incident>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Message>>,
        inbox: Receiver<Message>,
        model: Option<Arc<TimeModel>>,
    ) -> Self {
        Comm {
            rank,
            size,
            senders,
            inbox,
            pending: Vec::new(),
            clock: 0.0,
            model,
            coll_seq: 0,
            trace: None,
            incidents: Vec::new(),
        }
    }

    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time, seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Advances the virtual clock by `dt` seconds (a compute phase of
    /// externally measured duration).
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "invalid time advance {dt}");
        self.clock += dt;
    }

    /// Advances the clock by the model's compute time for `items` on this
    /// rank. No-op without a time model.
    ///
    /// When tracing is enabled the phase is recorded as a
    /// [`crate::trace::CommOp::Compute`] record (peer = own rank,
    /// bytes = 0), so executed traces carry compute intervals alongside
    /// transfers. Explicit [`Comm::advance`] calls are *not* recorded —
    /// they model externally measured time, not necessarily computation.
    pub fn model_compute(&mut self, items: usize) {
        if let Some(m) = &self.model {
            let start = self.clock;
            self.clock += m.compute_time(self.rank, items);
            let (rank, end) = (self.rank, self.clock);
            if span::enabled() {
                span::record_virtual(
                    "mpi",
                    "mpi.compute",
                    rank as u64,
                    start,
                    end,
                    vec![("items", items.to_string())],
                );
            }
            if let Some(t) = &mut self.trace {
                t.push(crate::trace::CommRecord {
                    op: crate::trace::CommOp::Compute,
                    peer: rank,
                    bytes: 0,
                    start,
                    end,
                });
            }
        }
    }

    // ---- point-to-point -----------------------------------------------------

    /// Sends raw bytes to `dest` with a user `tag`.
    ///
    /// Advances this rank's clock by the modelled transfer time (the
    /// sender owns the port — the single-port model of §2.3); the message
    /// carries the completion timestamp for the receiver to synchronize
    /// on.
    pub fn send_bytes(&mut self, dest: usize, tag: Tag, payload: &[u8]) {
        self.send_internal(dest, tag, payload.to_vec());
    }

    pub(crate) fn send_internal(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) {
        assert!(dest < self.size, "destination {dest} out of range");
        let start = self.clock;
        let bytes = payload.len();
        if let Some(m) = &self.model {
            self.clock += m.link_time(dest, bytes);
        }
        let reg = gs_scatter::metrics::Registry::global();
        reg.counter("mpi_sends_total", "point-to-point sends issued").inc();
        reg.counter("mpi_sent_bytes_total", "payload bytes put on the wire")
            .add(bytes as u64);
        reg.histogram("mpi_send_seconds", "per-send transfer time (virtual clock)")
            .observe(self.clock - start);
        if span::enabled() {
            span::record_virtual(
                "mpi",
                "mpi.send",
                self.rank as u64,
                start,
                self.clock,
                vec![("peer", dest.to_string()), ("bytes", bytes.to_string())],
            );
        }
        let msg = Message { src: self.rank, tag, timestamp: self.clock, payload };
        if let Some(t) = &mut self.trace {
            t.push(crate::trace::CommRecord {
                op: crate::trace::CommOp::Send,
                peer: dest,
                bytes,
                start,
                end: self.clock,
            });
        }
        self.senders[dest]
            .send(msg)
            .unwrap_or_else(|_| panic!("rank {dest} hung up (panicked?)"));
    }

    /// Receives the next message from `src` with `tag` (blocking).
    ///
    /// Synchronizes the virtual clock: a message cannot be consumed before
    /// its transfer completed at the sender.
    pub fn recv_bytes(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        let start = self.clock;
        let msg = self.match_message(src, tag);
        self.clock = self.clock.max(msg.timestamp);
        if span::enabled() {
            span::record_virtual(
                "mpi",
                "mpi.recv",
                self.rank as u64,
                start,
                self.clock,
                vec![("peer", src.to_string()), ("bytes", msg.payload.len().to_string())],
            );
        }
        if let Some(t) = &mut self.trace {
            t.push(crate::trace::CommRecord {
                op: crate::trace::CommOp::Recv,
                peer: src,
                bytes: msg.payload.len(),
                start,
                end: self.clock,
            });
        }
        msg.payload
    }

    pub(crate) fn match_message(&mut self, src: usize, tag: Tag) -> Message {
        let depth = gs_scatter::metrics::Registry::global()
            .gauge("mpi_queue_depth", "messages parked waiting for a matching recv");
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            let msg = self.pending.remove(pos);
            depth.add(-1.0);
            return msg;
        }
        loop {
            let msg = self
                .inbox
                .recv()
                .unwrap_or_else(|_| panic!("world shut down while rank {} was receiving", self.rank));
            if msg.src == src && msg.tag == tag {
                return msg;
            }
            self.pending.push(msg);
            depth.add(1.0);
        }
    }

    /// Typed send: encodes `data` little-endian.
    pub fn send<T: Datum>(&mut self, dest: usize, tag: Tag, data: &[T]) {
        self.send_internal(dest, tag, encode(data));
    }

    /// Typed receive matching [`Comm::send`].
    pub fn recv<T: Datum>(&mut self, src: usize, tag: Tag) -> Vec<T> {
        decode(&self.recv_bytes(src, tag))
    }

    // ---- collectives ---------------------------------------------------------

    pub(crate) fn next_seq(&mut self) -> u64 {
        self.coll_seq += 1;
        self.coll_seq
    }

    /// Synchronizes all ranks (and their clocks, to the max).
    pub fn barrier(&mut self) {
        let seq = self.next_seq();
        let up = Tag::collective(op::BARRIER_UP, seq);
        let down = Tag::collective(op::BARRIER_DOWN, seq);
        if self.rank == 0 {
            let mut max_clock = self.clock;
            for r in 1..self.size {
                let t = self.recv::<f64>(r, up);
                max_clock = max_clock.max(t[0]);
            }
            self.clock = self.clock.max(max_clock);
            for r in 1..self.size {
                self.send::<f64>(r, down, &[max_clock]);
            }
        } else {
            let c = self.clock;
            self.send::<f64>(0, up, &[c]);
            let t = self.recv::<f64>(0, down);
            self.clock = self.clock.max(t[0]);
        }
    }

    /// Broadcast from `root`: flat tree, root sends to each rank in rank
    /// order (the high-latency strategy of MPICH-G2 noted in §1).
    pub fn bcast<T: Datum>(&mut self, root: usize, data: &[T]) -> Vec<T> {
        let seq = self.next_seq();
        let tag = Tag::collective(op::BCAST, seq);
        if self.rank == root {
            for r in 0..self.size {
                if r != root {
                    self.send(r, tag, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root, tag)
        }
    }

    /// `MPI_Scatterv`: root holds `sendbuf` and sends `counts[r]` items to
    /// each rank `r` **in rank order** (single port); everyone returns its
    /// own block. Non-root ranks pass `None`.
    ///
    /// # Panics
    /// Panics on the root if `sendbuf` is missing or shorter than
    /// `counts` requires.
    pub fn scatterv<T: Datum>(
        &mut self,
        root: usize,
        sendbuf: Option<&[T]>,
        counts: &[usize],
    ) -> Vec<T> {
        assert_eq!(counts.len(), self.size, "one count per rank");
        let seq = self.next_seq();
        let tag = Tag::collective(op::SCATTER, seq);
        if self.rank == root {
            let buf = sendbuf.expect("root must provide the send buffer");
            let total: usize = counts.iter().sum();
            assert!(buf.len() >= total, "send buffer too short: {} < {total}", buf.len());
            let mut offset = 0usize;
            let mut own: Option<Vec<T>> = None;
            // Rank order: this is what makes the stair effect (Fig. 1).
            for r in 0..self.size {
                let block = &buf[offset..offset + counts[r]];
                if r == root {
                    // The root keeps its block; no transfer, no port time.
                    // Traced as a zero-duration self-send so that byte
                    // totals conserve (Σ link bytes = buffer size).
                    if let Some(t) = &mut self.trace {
                        t.push(crate::trace::CommRecord {
                            op: crate::trace::CommOp::Send,
                            peer: root,
                            bytes: block.len() * T::WIDTH,
                            start: self.clock,
                            end: self.clock,
                        });
                    }
                    own = Some(block.to_vec());
                } else {
                    self.send(r, tag, block);
                }
                offset += counts[r];
            }
            own.expect("root is one of the ranks")
        } else {
            self.recv(root, tag)
        }
    }

    /// `MPI_Scatter`: equal blocks. The buffer length must be divisible by
    /// the world size (as in MPI, where `sendcount` is uniform).
    pub fn scatter<T: Datum>(&mut self, root: usize, sendbuf: Option<&[T]>) -> Vec<T> {
        if self.rank == root {
            let buf = sendbuf.expect("root must provide the send buffer");
            assert_eq!(
                buf.len() % self.size,
                0,
                "MPI_Scatter needs a buffer divisible by the number of ranks; \
                 use scatterv for the general case"
            );
            let counts = vec![buf.len() / self.size; self.size];
            self.scatterv(root, sendbuf, &counts)
        } else {
            // Mirror scatterv's tag sequencing without needing the counts.
            let seq = self.next_seq();
            let tag = Tag::collective(op::SCATTER, seq);
            self.recv(root, tag)
        }
    }

    /// `MPI_Gatherv`: every rank contributes `data`; the root receives the
    /// blocks in rank order and returns the concatenation; others get
    /// `None`.
    pub fn gatherv<T: Datum>(&mut self, root: usize, data: &[T]) -> Option<Vec<T>> {
        let seq = self.next_seq();
        let tag = Tag::collective(op::GATHER, seq);
        if self.rank == root {
            let mut out = Vec::new();
            for r in 0..self.size {
                if r == root {
                    out.extend_from_slice(data);
                } else {
                    out.extend(self.recv::<T>(r, tag));
                }
            }
            Some(out)
        } else {
            self.send(root, tag, data);
            None
        }
    }

    /// Reduction to the root with a binary operator; returns `Some(result)`
    /// on the root, `None` elsewhere. The operator must be associative and
    /// commutative (rank-order folding is used).
    pub fn reduce<T: Datum>(
        &mut self,
        root: usize,
        value: T,
        mut combine: impl FnMut(T, T) -> T,
    ) -> Option<T> {
        let seq = self.next_seq();
        let tag = Tag::collective(op::REDUCE, seq);
        if self.rank == root {
            let mut acc = value;
            for r in 0..self.size {
                if r != root {
                    let v = self.recv::<T>(r, tag);
                    acc = combine(acc, v[0]);
                }
            }
            Some(acc)
        } else {
            self.send(root, tag, &[value]);
            None
        }
    }

    /// All-reduce: reduce to rank 0, then broadcast the result.
    pub fn allreduce<T: Datum>(&mut self, value: T, combine: impl FnMut(T, T) -> T) -> T {
        let r = self.reduce(0, value, combine);
        let out = match r {
            Some(v) => self.bcast(0, &[v]),
            None => self.bcast(0, &[]),
        };
        out[0]
    }
}
