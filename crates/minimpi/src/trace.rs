//! Per-rank communication tracing, for post-mortem Gantt charts of *real*
//! runs (as opposed to the planner's predictions).
//!
//! Records accumulate per rank; after the world finishes,
//! [`executed_trace`] merges every rank's records into one
//! [`gs_scatter::obs::Trace`] in the shared observability schema, so real
//! runs diff directly against predicted and simulated schedules
//! (`gs report`).

use gs_scatter::obs::{Event, EventKind, Trace, TraceSource};

use crate::comm::Comm;

/// Kind of a traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// An outgoing transfer (clock time = port occupancy). A `Send`
    /// whose peer is the recording rank itself is a root keeping its own
    /// scatter block (zero duration, bytes still accounted).
    Send,
    /// An incoming receive (clock may jump to the message timestamp).
    Recv,
    /// A modelled compute phase ([`Comm::model_compute`]).
    Compute,
}

/// One traced point-to-point operation on a rank.
#[derive(Debug, Clone, PartialEq)]
pub struct CommRecord {
    /// Operation kind.
    pub op: CommOp,
    /// Peer rank.
    pub peer: usize,
    /// Payload size, bytes.
    pub bytes: usize,
    /// Virtual time when the operation started on this rank.
    pub start: f64,
    /// Virtual time when it completed on this rank.
    pub end: f64,
}

impl Comm {
    /// Enables communication tracing on this rank (records every
    /// point-to-point operation, including those inside collectives).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Takes the accumulated trace, leaving tracing enabled.
    pub fn take_trace(&mut self) -> Vec<CommRecord> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Total bytes this rank sent so far (0 unless tracing is enabled).
    pub fn bytes_sent(&self) -> usize {
        self.trace
            .as_ref()
            .map(|t| {
                t.iter()
                    .filter(|r| r.op == CommOp::Send)
                    .map(|r| r.bytes)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total virtual seconds this rank's port spent sending (0 unless
    /// tracing is enabled).
    pub fn send_busy_time(&self) -> f64 {
        self.trace
            .as_ref()
            .map(|t| {
                t.iter()
                    .filter(|r| r.op == CommOp::Send)
                    .map(|r| r.end - r.start)
                    .sum()
            })
            .unwrap_or(0.0)
    }
}

/// Merges the per-rank records of a finished world into one
/// observability [`Trace`] (source [`TraceSource::Executed`]).
///
/// `records[r]` is rank `r`'s [`Comm::take_trace`] output; `names`
/// labels the ranks (by rank number, *not* scatter order). Wire
/// occupancy is taken from the **sender's** `Send` records — `Recv`
/// records conflate waiting with transfer time and are skipped —
/// so every transfer appears exactly once, as a send-interval on the
/// receiving rank with the sender as peer (the schema's convention).
/// Compute records become compute intervals on their own rank.
///
/// Executed traces carry no item ranges (`item_bytes` is recorded for
/// reference; payload bytes come from the records themselves).
pub fn executed_trace(names: &[&str], item_bytes: u64, records: &[Vec<CommRecord>]) -> Trace {
    assert_eq!(names.len(), records.len(), "one record list per rank");
    let mut trace = Trace::new(
        TraceSource::Executed,
        item_bytes,
        names.iter().map(|s| s.to_string()).collect(),
    );
    // Sends first, so that at equal timestamps a receive interval closes
    // before the compute interval it enables opens (stable sort keeps
    // push order on ties).
    for (rank, recs) in records.iter().enumerate() {
        for r in recs.iter().filter(|r| r.op == CommOp::Send) {
            let bytes = r.bytes as u64;
            trace.push(Event::send(EventKind::SendStart, r.start, r.peer, rank, bytes));
            trace.push(Event::send(EventKind::SendEnd, r.end, r.peer, rank, bytes));
        }
    }
    for (rank, recs) in records.iter().enumerate() {
        for r in recs.iter().filter(|r| r.op == CommOp::Compute) {
            trace.push(Event::compute(EventKind::ComputeStart, r.start, rank));
            trace.push(Event::compute(EventKind::ComputeEnd, r.end, rank));
        }
    }
    trace.sort_events();
    trace
}

#[cfg(test)]
mod tests {
    use crate::{run_world, Tag, TimeModel, WorldConfig};
    use gs_scatter::cost::CostFn;

    use super::*;

    #[test]
    fn tracing_records_sends_and_recvs() {
        let model = TimeModel {
            link: vec![CostFn::Zero, CostFn::Linear { slope: 0.5 }],
            compute: vec![CostFn::Zero; 2],
        };
        let out = run_world(2, WorldConfig::with_time(model), |c| {
            c.enable_tracing();
            if c.rank() == 0 {
                c.send::<u64>(1, Tag::user(1), &[1, 2, 3, 4]); // 32 bytes
                (c.take_trace(), c.bytes_sent())
            } else {
                let _ = c.recv::<u64>(0, Tag::user(1));
                (c.take_trace(), c.bytes_sent())
            }
        });
        let (t0, _sent_after_take) = &out[0];
        assert_eq!(t0.len(), 1);
        assert_eq!(t0[0].op, CommOp::Send);
        assert_eq!(t0[0].bytes, 32);
        assert_eq!(t0[0].end - t0[0].start, 16.0); // 32 bytes * 0.5 s/byte
        let (t1, _) = &out[1];
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].op, CommOp::Recv);
        assert_eq!(t1[0].end, 16.0, "receiver synced to transfer completion");
    }

    #[test]
    fn tracing_disabled_by_default() {
        let out = run_world(2, WorldConfig::default(), |c| {
            if c.rank() == 0 {
                c.send::<u8>(1, Tag::user(9), &[1]);
            } else {
                let _ = c.recv::<u8>(0, Tag::user(9));
            }
            (c.take_trace().len(), c.bytes_sent(), c.send_busy_time())
        });
        assert_eq!(out[0], (0, 0, 0.0));
    }

    #[test]
    fn compute_phases_are_recorded() {
        let model = TimeModel {
            link: vec![CostFn::Zero; 2],
            compute: vec![CostFn::Linear { slope: 2.0 }, CostFn::Zero],
        };
        let out = run_world(2, WorldConfig::with_time(model), |c| {
            c.enable_tracing();
            c.model_compute(5);
            c.take_trace()
        });
        let rec = &out[0][0];
        assert_eq!(rec.op, CommOp::Compute);
        assert_eq!((rec.start, rec.end), (0.0, 10.0));
        assert_eq!(rec.peer, 0);
    }

    #[test]
    fn executed_trace_from_scatterv_world() {
        // Two workers + root (rank 0), heterogeneous links, Eq.-1 world:
        // the merged executed trace must carry every transfer once and
        // conserve bytes, including the root's kept block.
        let model = TimeModel {
            link: vec![CostFn::Zero, CostFn::Linear { slope: 1.0 }, CostFn::Linear { slope: 2.0 }],
            compute: vec![CostFn::Zero, CostFn::Linear { slope: 0.5 }, CostFn::Linear { slope: 0.5 }],
        };
        let counts = [2usize, 3, 1];
        let records = run_world(3, WorldConfig::with_time(model), move |c| {
            c.enable_tracing();
            let buf: Vec<u64> = (0..6).collect();
            let mine = c.scatterv(0, if c.rank() == 0 { Some(&buf) } else { None }, &counts);
            c.model_compute(mine.len());
            c.take_trace()
        });
        let trace = executed_trace(&["root", "w1", "w2"], 8, &records);
        trace.validate().unwrap();
        let summary = trace.summarize().unwrap();
        // Byte conservation: all 6 u64 items appear on some link.
        assert_eq!(summary.total_bytes, 6 * 8);
        let self_link = summary.links.iter().find(|l| l.src == 0 && l.dst == 0).unwrap();
        assert_eq!(self_link.bytes, 2 * 8);
        // Makespan: root sends 24 B to w1 (t=24), then 8 B to w2
        // (t=24+16=40); w1 computes 3·0.5 done at 25.5; w2 at 40.5.
        assert_eq!(summary.makespan, 40.5);
        assert_eq!(summary.ranks[0].send, 40.0);
        assert_eq!(summary.ranks[2].idle, 40.5 - 16.0 - 0.5);
    }

    #[test]
    fn busy_time_accumulates() {
        let model = TimeModel {
            link: vec![CostFn::Zero, CostFn::Linear { slope: 1.0 }],
            compute: vec![CostFn::Zero; 2],
        };
        let out = run_world(2, WorldConfig::with_time(model), |c| {
            c.enable_tracing();
            if c.rank() == 0 {
                c.send::<u8>(1, Tag::user(1), &[0; 3]);
                c.send::<u8>(1, Tag::user(2), &[0; 5]);
                c.send_busy_time()
            } else {
                let _ = c.recv::<u8>(0, Tag::user(1));
                let _ = c.recv::<u8>(0, Tag::user(2));
                0.0
            }
        });
        assert_eq!(out[0], 8.0);
    }
}
