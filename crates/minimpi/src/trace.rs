//! Per-rank communication tracing, for post-mortem Gantt charts of *real*
//! runs (as opposed to the planner's predictions).

use crate::comm::Comm;

/// Kind of a traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// An outgoing transfer (clock time = port occupancy).
    Send,
    /// An incoming receive (clock may jump to the message timestamp).
    Recv,
}

/// One traced point-to-point operation on a rank.
#[derive(Debug, Clone, PartialEq)]
pub struct CommRecord {
    /// Operation kind.
    pub op: CommOp,
    /// Peer rank.
    pub peer: usize,
    /// Payload size, bytes.
    pub bytes: usize,
    /// Virtual time when the operation started on this rank.
    pub start: f64,
    /// Virtual time when it completed on this rank.
    pub end: f64,
}

impl Comm {
    /// Enables communication tracing on this rank (records every
    /// point-to-point operation, including those inside collectives).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Takes the accumulated trace, leaving tracing enabled.
    pub fn take_trace(&mut self) -> Vec<CommRecord> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Total bytes this rank sent so far (0 unless tracing is enabled).
    pub fn bytes_sent(&self) -> usize {
        self.trace
            .as_ref()
            .map(|t| {
                t.iter()
                    .filter(|r| r.op == CommOp::Send)
                    .map(|r| r.bytes)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total virtual seconds this rank's port spent sending (0 unless
    /// tracing is enabled).
    pub fn send_busy_time(&self) -> f64 {
        self.trace
            .as_ref()
            .map(|t| {
                t.iter()
                    .filter(|r| r.op == CommOp::Send)
                    .map(|r| r.end - r.start)
                    .sum()
            })
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::{run_world, Tag, TimeModel, WorldConfig};
    use gs_scatter::cost::CostFn;

    use super::*;

    #[test]
    fn tracing_records_sends_and_recvs() {
        let model = TimeModel {
            link: vec![CostFn::Zero, CostFn::Linear { slope: 0.5 }],
            compute: vec![CostFn::Zero; 2],
        };
        let out = run_world(2, WorldConfig::with_time(model), |c| {
            c.enable_tracing();
            if c.rank() == 0 {
                c.send::<u64>(1, Tag::user(1), &[1, 2, 3, 4]); // 32 bytes
                (c.take_trace(), c.bytes_sent())
            } else {
                let _ = c.recv::<u64>(0, Tag::user(1));
                (c.take_trace(), c.bytes_sent())
            }
        });
        let (t0, _sent_after_take) = &out[0];
        assert_eq!(t0.len(), 1);
        assert_eq!(t0[0].op, CommOp::Send);
        assert_eq!(t0[0].bytes, 32);
        assert_eq!(t0[0].end - t0[0].start, 16.0); // 32 bytes * 0.5 s/byte
        let (t1, _) = &out[1];
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].op, CommOp::Recv);
        assert_eq!(t1[0].end, 16.0, "receiver synced to transfer completion");
    }

    #[test]
    fn tracing_disabled_by_default() {
        let out = run_world(2, WorldConfig::default(), |c| {
            if c.rank() == 0 {
                c.send::<u8>(1, Tag::user(9), &[1]);
            } else {
                let _ = c.recv::<u8>(0, Tag::user(9));
            }
            (c.take_trace().len(), c.bytes_sent(), c.send_busy_time())
        });
        assert_eq!(out[0], (0, 0, 0.0));
    }

    #[test]
    fn busy_time_accumulates() {
        let model = TimeModel {
            link: vec![CostFn::Zero, CostFn::Linear { slope: 1.0 }],
            compute: vec![CostFn::Zero; 2],
        };
        let out = run_world(2, WorldConfig::with_time(model), |c| {
            c.enable_tracing();
            if c.rank() == 0 {
                c.send::<u8>(1, Tag::user(1), &[0; 3]);
                c.send::<u8>(1, Tag::user(2), &[0; 5]);
                c.send_busy_time()
            } else {
                let _ = c.recv::<u8>(0, Tag::user(1));
                let _ = c.recv::<u8>(0, Tag::user(2));
                0.0
            }
        });
        assert_eq!(out[0], 8.0);
    }
}
