//! Nonblocking receives and combined send/receive.
//!
//! Sends in this runtime are always asynchronous (unbounded channels), so
//! `MPI_Isend` needs no handle; the interesting half is `irecv`/`test`/
//! `wait`, which lets a rank overlap its own compute with an incoming
//! transfer — the communication/computation overlap the paper explicitly
//! chose *not* to rely on (§6: "we do not consider interlacing computation
//! and communication phases"), provided here so that extension experiments
//! can quantify what that choice costs.

use crate::comm::Comm;
use crate::datum::{decode, Datum};
use crate::message::Tag;

/// A pending nonblocking receive. Obtain with [`Comm::irecv`], finish with
/// [`Comm::wait`] (or poll with [`Comm::test`]).
///
/// Dropping a request without waiting leaves the message (if it arrives)
/// in the pending queue, where a later matching `recv` will find it — the
/// same semantics as cancelling an MPI request and re-posting it.
#[derive(Debug, Clone, Copy)]
#[must_use = "a request does nothing until waited on"]
pub struct RecvRequest {
    src: usize,
    tag: Tag,
}

impl Comm {
    /// Posts a nonblocking receive for `(src, tag)`.
    pub fn irecv(&mut self, src: usize, tag: Tag) -> RecvRequest {
        assert!(src < self.size, "source {src} out of range");
        RecvRequest { src, tag }
    }

    /// Returns `true` if the matching message has already arrived (a
    /// subsequent [`Comm::wait`] will not block). Does not advance the
    /// virtual clock.
    pub fn test(&mut self, req: &RecvRequest) -> bool {
        // Drain whatever is sitting in the channel into the pending queue,
        // then look for a match.
        while let Ok(msg) = self.inbox.try_recv() {
            self.pending.push(msg);
        }
        self.pending
            .iter()
            .any(|m| m.src == req.src && m.tag == req.tag)
    }

    /// Blocks until the request's message arrives and returns its payload,
    /// synchronizing the virtual clock like a plain receive.
    pub fn wait<T: Datum>(&mut self, req: RecvRequest) -> Vec<T> {
        decode(&self.recv_bytes(req.src, req.tag))
    }

    /// Raw-bytes variant of [`Comm::wait`].
    pub fn wait_bytes(&mut self, req: RecvRequest) -> Vec<u8> {
        self.recv_bytes(req.src, req.tag)
    }

    /// Combined send+receive (like `MPI_Sendrecv`): sends `data` to `dest`
    /// and receives from `src` under the same user tag, without deadlock
    /// regardless of ordering (sends never block here).
    pub fn sendrecv<T: Datum>(
        &mut self,
        dest: usize,
        src: usize,
        tag: Tag,
        data: &[T],
    ) -> Vec<T> {
        self.send(dest, tag, data);
        self.recv(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_world, WorldConfig};

    #[test]
    fn irecv_wait_round_trip() {
        let out = run_world(2, WorldConfig::default(), |c| {
            if c.rank() == 0 {
                c.send::<u32>(1, Tag::user(5), &[42, 43]);
                vec![]
            } else {
                let req = c.irecv(0, Tag::user(5));
                c.wait::<u32>(req)
            }
        });
        assert_eq!(out[1], vec![42, 43]);
    }

    #[test]
    fn test_polls_without_consuming() {
        let out = run_world(2, WorldConfig::default(), |c| {
            if c.rank() == 0 {
                c.send::<u8>(1, Tag::user(1), &[7]);
                c.barrier();
                true
            } else {
                c.barrier(); // after this, the message must have been sent
                let req = c.irecv(0, Tag::user(1));
                // Spin until visible (channel delivery is asynchronous but
                // the send happened-before the barrier release).
                let mut seen = c.test(&req);
                for _ in 0..1000 {
                    if seen {
                        break;
                    }
                    std::thread::yield_now();
                    seen = c.test(&req);
                }
                assert!(seen, "message visible after barrier");
                // test() again: still there (not consumed).
                assert!(c.test(&req));
                let v = c.wait::<u8>(req);
                assert_eq!(v, vec![7]);
                true
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn dropped_request_leaves_message_for_recv() {
        let out = run_world(2, WorldConfig::default(), |c| {
            if c.rank() == 0 {
                c.send::<u8>(1, Tag::user(3), &[9]);
                0
            } else {
                let _req = c.irecv(0, Tag::user(3));
                // Never waited; a plain recv still gets the payload.
                c.recv::<u8>(0, Tag::user(3))[0]
            }
        });
        assert_eq!(out[1], 9);
    }

    #[test]
    fn sendrecv_ring_rotates() {
        let p = 5;
        let out = run_world(p, WorldConfig::default(), |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv::<u64>(next, prev, Tag::user(1), &[c.rank() as u64])[0]
        });
        for (rank, v) in out.iter().enumerate() {
            assert_eq!(*v as usize, (rank + p - 1) % p);
        }
    }

    #[test]
    fn overlap_compute_with_incoming_transfer() {
        // Worker computes 10 s while its data is in flight; with irecv the
        // finish time is max(compute, transfer), not the sum.
        use crate::TimeModel;
        use gs_scatter::cost::CostFn;
        let model = TimeModel {
            link: vec![CostFn::Zero, CostFn::Linear { slope: 1.0 }],
            compute: vec![CostFn::Zero; 2],
        };
        let out = run_world(2, WorldConfig::with_time(model), |c| {
            if c.rank() == 0 {
                c.send::<u8>(1, Tag::user(1), &[0; 6]); // arrives at t = 6
                c.now()
            } else {
                let req = c.irecv(0, Tag::user(1));
                c.advance(10.0); // local compute while data flies
                let _ = c.wait_bytes(req);
                c.now() // max(10, 6) = 10, not 16
            }
        });
        assert_eq!(out[1], 10.0);
    }
}
