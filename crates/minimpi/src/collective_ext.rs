//! Additional collectives: gather (uniform), allgather(v), alltoall, and
//! inclusive scan. All follow the same rank-ordered, root-serialized
//! discipline as the §2.3 model.

use crate::comm::{op, Comm};
use crate::datum::Datum;
use crate::message::Tag;

impl Comm {
    /// `MPI_Gather` with uniform block sizes: every rank contributes
    /// `data` (all the same length); the root returns the concatenation in
    /// rank order.
    pub fn gather<T: Datum>(&mut self, root: usize, data: &[T]) -> Option<Vec<T>> {
        self.gatherv(root, data)
    }

    /// `MPI_Allgatherv`: every rank contributes `data`; everyone receives
    /// the concatenation in rank order. Implemented as gather-to-0 +
    /// broadcast (the flat strategies of §1's high-latency regime).
    pub fn allgatherv<T: Datum>(&mut self, data: &[T]) -> Vec<T> {
        let gathered = self.gatherv(0, data);
        let seq = self.next_seq();
        let tag = Tag::collective(op::ALLGATHER, seq);
        if self.rank == 0 {
            let all = gathered.expect("rank 0 gathered");
            for r in 1..self.size {
                self.send(r, tag, &all);
            }
            all
        } else {
            self.recv(0, tag)
        }
    }

    /// `MPI_Alltoall` with uniform block size: `data` holds `size` blocks
    /// of `block` elements; rank `i` receives block `i` from everyone, in
    /// rank order.
    ///
    /// # Panics
    /// Panics if `data.len() != block * size`.
    pub fn alltoall<T: Datum>(&mut self, data: &[T], block: usize) -> Vec<T> {
        assert_eq!(
            data.len(),
            block * self.size,
            "alltoall needs one block per rank"
        );
        let seq = self.next_seq();
        let tag = Tag::collective(op::ALLTOALL, seq);
        // Everyone sends its blocks in rank order (self-block kept local),
        // then receives in rank order — deterministic and deadlock-free
        // because sends never block.
        for dest in 0..self.size {
            if dest != self.rank {
                self.send(dest, tag, &data[dest * block..(dest + 1) * block]);
            }
        }
        let mut out = Vec::with_capacity(data.len());
        for src in 0..self.size {
            if src == self.rank {
                out.extend_from_slice(&data[self.rank * block..(self.rank + 1) * block]);
            } else {
                out.extend(self.recv::<T>(src, tag));
            }
        }
        out
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank `i` receives
    /// `combine(v_0, .., v_i)`. Linear chain in rank order.
    pub fn scan<T: Datum>(&mut self, value: T, mut combine: impl FnMut(T, T) -> T) -> T {
        let seq = self.next_seq();
        let tag = Tag::collective(op::SCAN, seq);
        let acc = if self.rank == 0 {
            value
        } else {
            let prev = self.recv::<T>(self.rank - 1, tag)[0];
            combine(prev, value)
        };
        if self.rank + 1 < self.size {
            self.send(self.rank + 1, tag, &[acc]);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use crate::{run_world, WorldConfig};

    #[test]
    fn gather_uniform() {
        let out = run_world(3, WorldConfig::default(), |c| {
            let mine = [c.rank() as u64 * 10, c.rank() as u64 * 10 + 1];
            c.gather(1, &mine)
        });
        assert!(out[0].is_none());
        assert_eq!(out[1].as_ref().unwrap(), &vec![0, 1, 10, 11, 20, 21]);
        assert!(out[2].is_none());
    }

    #[test]
    fn allgatherv_everyone_sees_everything() {
        let out = run_world(4, WorldConfig::default(), |c| {
            // Rank r contributes r+1 elements, all equal to r.
            let mine = vec![c.rank() as u32; c.rank() + 1];
            c.allgatherv(&mine)
        });
        let expect: Vec<u32> = vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3];
        for r in out {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let p = 3;
        let out = run_world(p, WorldConfig::default(), |c| {
            // data[d] = 10*me + d: block d goes to rank d.
            let data: Vec<u64> = (0..c.size()).map(|d| (10 * c.rank() + d) as u64).collect();
            c.alltoall(&data, 1)
        });
        for (me, recv) in out.iter().enumerate() {
            let expect: Vec<u64> = (0..p).map(|src| (10 * src + me) as u64).collect();
            assert_eq!(recv, &expect, "rank {me}");
        }
    }

    #[test]
    fn alltoall_multi_element_blocks() {
        let out = run_world(2, WorldConfig::default(), |c| {
            let base = c.rank() as u64 * 100;
            let data: Vec<u64> = vec![base, base + 1, base + 10, base + 11];
            c.alltoall(&data, 2)
        });
        assert_eq!(out[0], vec![0, 1, 100, 101]);
        assert_eq!(out[1], vec![10, 11, 110, 111]);
    }

    #[test]
    fn scan_prefix_sums() {
        let out = run_world(5, WorldConfig::default(), |c| {
            c.scan((c.rank() + 1) as u64, |a, b| a + b)
        });
        assert_eq!(out, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn scan_single_rank() {
        let out = run_world(1, WorldConfig::default(), |c| c.scan(7u64, |a, b| a + b));
        assert_eq!(out, vec![7]);
    }

    #[test]
    #[should_panic]
    fn alltoall_rejects_bad_length() {
        run_world(2, WorldConfig::default(), |c| {
            let _ = c.alltoall(&[1u8, 2, 3], 2); // needs 4 elements
        });
    }
}
