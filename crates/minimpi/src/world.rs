//! World construction: spawn one thread per rank, wire the channels, run —
//! or, for worlds far wider than the machine, multiplex the ranks onto a
//! bounded worker pool ([`run_world_pooled`]).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel::{unbounded, Receiver};

use crate::comm::Comm;
use crate::message::Message;
use crate::time::TimeModel;

/// Configuration of a world.
#[derive(Debug, Clone, Default)]
pub struct WorldConfig {
    /// Optional virtual-time model (see [`TimeModel`]). `None` means
    /// clocks only advance through explicit [`Comm::advance`] calls.
    pub time: Option<TimeModel>,
}

impl WorldConfig {
    /// A world with the given heterogeneity model.
    pub fn with_time(model: TimeModel) -> Self {
        WorldConfig { time: Some(model) }
    }
}

/// Runs `f` on `size` ranks (threads) and returns each rank's result,
/// indexed by rank.
///
/// Panics in any rank propagate (the world is torn down and the panic is
/// re-raised), so tests fail loudly rather than deadlock.
///
/// # Panics
/// Panics if `size == 0`, or if the time model covers a different number
/// of ranks.
pub fn run_world<T, F>(size: usize, config: WorldConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Send + Sync,
{
    assert!(size > 0, "a world needs at least one rank");
    if let Some(m) = &config.time {
        assert_eq!(m.len(), size, "time model must cover every rank");
    }
    let model = config.time.map(Arc::new);

    let (senders, receivers): (Vec<_>, Vec<_>) =
        (0..size).map(|_| unbounded::<Message>()).unzip();

    let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (rank, (inbox, slot)) in receivers.into_iter().zip(results.iter_mut()).enumerate() {
            let senders = senders.clone();
            let model = model.clone();
            let f = &f;
            handles.push(scope.spawn(move |_| {
                let mut comm = Comm::new(rank, size, senders, inbox, model);
                *slot = Some(f(&mut comm));
                // Comm (and its channel ends) drops here; ranks that exit
                // early while others still send to them would error — the
                // unbounded channel keeps sends non-blocking, and a Comm
                // owns its receiver until it returns.
            }));
        }
        for h in handles {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    })
    .expect("scope itself cannot fail beyond rank panics");

    results
        .into_iter()
        .map(|r| r.expect("every rank produced a result"))
        .collect()
}

/// Runs `f` on `size` logical ranks multiplexed onto at most `threads`
/// OS threads, and returns each rank's result, indexed by rank.
///
/// Each worker thread pulls a rank off a queue and runs it **to
/// completion** before taking the next — ranks are not preempted. The
/// unbounded per-rank inboxes make sends non-blocking, so messages to a
/// rank that has not started yet simply wait in its channel. Results are
/// **bit-identical** to [`run_world`]: a rank's observable behaviour
/// (received bytes, virtual clocks, communication records) depends only
/// on message contents and per-sender order, both of which are
/// scheduling-independent.
///
/// `root` is scheduled first. This matters for the **capacity limit**
/// documented in `docs/simulation.md`: a pooled world supports
/// *root-centric* communication patterns — every blocking receive is
/// either (a) performed by `root`, or (b) a receive from `root` or from
/// a rank that needs nothing in return. `scatterv`, `scatterv_ft`,
/// `gatherv`, `bcast`, `reduce` and (with `root = 0`) `barrier`/
/// `allreduce` qualify; patterns where non-root ranks block on each
/// other (rings, nearest-neighbour halos) can deadlock on a bounded
/// pool and need [`run_world`]. When `root` itself blocks on receives
/// (gather-like patterns), `threads >= 2` is required so other ranks
/// can still be scheduled; scatter-only patterns run fine on one thread.
///
/// # Panics
/// Panics if `size == 0`, `threads == 0`, `root >= size`, or if the
/// time model covers a different number of ranks. Panics in any rank
/// propagate, as in [`run_world`].
pub fn run_world_pooled<T, F>(
    size: usize,
    threads: usize,
    root: usize,
    config: WorldConfig,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Send + Sync,
{
    assert!(size > 0, "a world needs at least one rank");
    assert!(threads > 0, "a pool needs at least one worker");
    assert!(root < size, "root rank {root} out of range (size {size})");
    if let Some(m) = &config.time {
        assert_eq!(m.len(), size, "time model must cover every rank");
    }
    let threads = threads.min(size);
    let model = config.time.map(Arc::new);

    let (senders, receivers): (Vec<_>, Vec<_>) =
        (0..size).map(|_| unbounded::<Message>()).unzip();

    // Job queue: every rank with its inbox, root first so gather-like
    // patterns find the blocking rank already running.
    let mut queue: VecDeque<(usize, Receiver<Message>)> = VecDeque::with_capacity(size);
    let mut inboxes: Vec<Option<Receiver<Message>>> = receivers.into_iter().map(Some).collect();
    queue.push_back((root, inboxes[root].take().expect("root inbox present")));
    for (rank, inbox) in inboxes.iter_mut().enumerate() {
        if let Some(inbox) = inbox.take() {
            queue.push_back((rank, inbox));
        }
    }
    let jobs = Mutex::new(queue);

    let reg = gs_scatter::metrics::Registry::global();
    reg.counter("mpi_pool_ranks_total", "logical ranks executed on the worker pool")
        .add(size as u64);
    reg.gauge("mpi_pool_threads", "worker threads of the last pooled world").set(threads as f64);

    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..size).map(|_| None).collect());
    let busy = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let senders = senders.clone();
            let model = model.clone();
            let (f, results, busy, peak, jobs) = (&f, &results, &busy, &peak, &jobs);
            handles.push(scope.spawn(move |_| {
                loop {
                    // Pop under the lock in its own statement — a
                    // `while let` would keep the guard (and starve the
                    // other workers) for the whole rank execution.
                    let job = jobs.lock().expect("job queue lock").pop_front();
                    let Some((rank, inbox)) = job else { break };
                    let now = busy.fetch_add(1, Ordering::Relaxed) + 1;
                    peak.fetch_max(now, Ordering::Relaxed);
                    let mut comm = Comm::new(rank, size, senders.clone(), inbox, model.clone());
                    let out = f(&mut comm);
                    drop(comm);
                    busy.fetch_sub(1, Ordering::Relaxed);
                    results.lock().expect("results lock")[rank] = Some(out);
                }
            }));
        }
        for h in handles {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    })
    .expect("scope itself cannot fail beyond rank panics");

    reg.gauge("mpi_pool_occupancy", "peak busy workers of the last pooled world")
        .set(peak.load(Ordering::Relaxed) as f64);

    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("every rank produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Tag;
    use gs_scatter::cost::CostFn;

    #[test]
    fn ranks_and_size() {
        let out = run_world(3, WorldConfig::default(), |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn point_to_point_ring() {
        // Each rank sends its rank to the next; receives from the previous.
        let out = run_world(4, WorldConfig::default(), |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send::<u64>(next, Tag::user(1), &[c.rank() as u64]);
            c.recv::<u64>(prev, Tag::user(1))[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = run_world(2, WorldConfig::default(), |c| {
            if c.rank() == 0 {
                c.send::<u64>(1, Tag::user(7), &[70]);
                c.send::<u64>(1, Tag::user(8), &[80]);
                0
            } else {
                // Receive tag 8 first even though 7 was sent first.
                let b = c.recv::<u64>(0, Tag::user(8))[0];
                let a = c.recv::<u64>(0, Tag::user(7))[0];
                a * 1000 + b
            }
        });
        assert_eq!(out[1], 70_080);
    }

    #[test]
    fn scatterv_and_gatherv_round_trip() {
        let data: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let out = run_world(3, WorldConfig::default(), |c| {
            let counts = [30, 20, 10];
            let mine = c.scatterv(0, if c.rank() == 0 { Some(&data[..]) } else { None }, &counts);
            let doubled: Vec<f64> = mine.iter().map(|x| x * 2.0).collect();
            c.gatherv(0, &doubled)
        });
        let gathered = out[0].as_ref().unwrap();
        assert_eq!(gathered.len(), 60);
        for (i, v) in gathered.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f64);
        }
        assert!(out[1].is_none());
    }

    #[test]
    fn scatter_uniform() {
        let data: Vec<u32> = (0..12).collect();
        let out = run_world(4, WorldConfig::default(), |c| {
            c.scatter(0, if c.rank() == 0 { Some(&data[..]) } else { None })
        });
        assert_eq!(out[0], vec![0, 1, 2]);
        assert_eq!(out[3], vec![9, 10, 11]);
    }

    #[test]
    fn bcast_delivers_everywhere() {
        let out = run_world(5, WorldConfig::default(), |c| {
            let data = if c.rank() == 2 { vec![3.5f64, 4.5] } else { vec![] };
            c.bcast(2, &data)
        });
        for r in out {
            assert_eq!(r, vec![3.5, 4.5]);
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        let out = run_world(4, WorldConfig::default(), |c| {
            let partial = (c.rank() + 1) as u64;
            let r = c.reduce(0, partial, |a, b| a + b);
            let all = c.allreduce(partial, |a, b| a + b);
            (r, all)
        });
        assert_eq!(out[0].0, Some(10));
        assert_eq!(out[1].0, None);
        assert!(out.iter().all(|(_, all)| *all == 10));
    }

    #[test]
    fn barrier_syncs_clocks() {
        let out = run_world(3, WorldConfig::default(), |c| {
            c.advance(c.rank() as f64 * 10.0); // 0, 10, 20
            c.barrier();
            c.now()
        });
        assert!(out.iter().all(|&t| t == 20.0), "{out:?}");
    }

    #[test]
    fn virtual_time_single_port_scatter() {
        // Links: rank1 = 1 s/byte, rank2 = 2 s/byte. Root sends 4 bytes to
        // each in rank order: rank1's data arrives at t=4, rank2's at
        // t=4+8=12 (the stair effect).
        let model = TimeModel {
            link: vec![
                CostFn::Zero,
                CostFn::Linear { slope: 1.0 },
                CostFn::Linear { slope: 2.0 },
            ],
            compute: vec![CostFn::Zero; 3],
        };
        let out = run_world(3, WorldConfig::with_time(model), |c| {
            let data: Vec<u8> = (0..12).collect();
            let counts = [4usize, 4, 4];
            let _mine =
                c.scatterv(0, if c.rank() == 0 { Some(&data[..]) } else { None }, &counts);
            c.now()
        });
        assert_eq!(out[1], 4.0, "rank 1 synced to its transfer completion");
        assert_eq!(out[2], 12.0, "rank 2 waited for rank 1's transfer");
        assert_eq!(out[0], 12.0, "root's port busy until the last send");
    }

    #[test]
    fn model_compute_advances_clock() {
        let model = TimeModel::compute_only(vec![
            CostFn::Linear { slope: 0.5 },
            CostFn::Linear { slope: 2.0 },
        ]);
        let out = run_world(2, WorldConfig::with_time(model), |c| {
            c.model_compute(10);
            c.now()
        });
        assert_eq!(out, vec![5.0, 20.0]);
    }

    #[test]
    fn single_rank_world() {
        let out = run_world(1, WorldConfig::default(), |c| {
            let mine = c.scatterv(0, Some(&[1u64, 2, 3][..]), &[3]);
            c.barrier();
            mine.iter().sum::<u64>()
        });
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn pooled_matches_threaded_results() {
        let data: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let body = |c: &mut Comm| {
            let counts = [30usize, 20, 10];
            let mine = c.scatterv(0, if c.rank() == 0 { Some(&data[..]) } else { None }, &counts);
            mine.iter().sum::<f64>()
        };
        let threaded = run_world(3, WorldConfig::default(), body);
        for threads in [1usize, 2, 8] {
            let pooled = run_world_pooled(3, threads, 0, WorldConfig::default(), body);
            assert_eq!(pooled, threaded, "threads={threads}");
        }
    }

    #[test]
    fn pooled_virtual_time_scatter_is_bit_identical() {
        let model = || TimeModel {
            link: vec![
                CostFn::Zero,
                CostFn::Linear { slope: 1.0 },
                CostFn::Linear { slope: 2.0 },
            ],
            compute: vec![CostFn::Zero; 3],
        };
        let body = |c: &mut Comm| {
            let data: Vec<u8> = (0..12).collect();
            let counts = [4usize, 4, 4];
            let _mine =
                c.scatterv(0, if c.rank() == 0 { Some(&data[..]) } else { None }, &counts);
            c.now()
        };
        let threaded = run_world(3, WorldConfig::with_time(model()), body);
        let pooled = run_world_pooled(3, 2, 0, WorldConfig::with_time(model()), body);
        let t_bits: Vec<u64> = threaded.iter().map(|t| t.to_bits()).collect();
        let p_bits: Vec<u64> = pooled.iter().map(|t| t.to_bits()).collect();
        assert_eq!(p_bits, t_bits);
    }

    #[test]
    fn pooled_gather_needs_only_two_workers() {
        // Root (scheduled first) blocks on receives from every other
        // rank; one extra worker cycles through the remaining ranks.
        let out = run_world_pooled(6, 2, 0, WorldConfig::default(), |c| {
            let doubled: Vec<f64> = vec![c.rank() as f64 * 2.0];
            c.gatherv(0, &doubled)
        });
        let gathered = out[0].as_ref().unwrap();
        assert_eq!(gathered, &vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn pooled_scatter_only_runs_on_one_worker() {
        // Root never receives, so even a single worker drains the world:
        // the root finishes first, then each rank finds its block waiting.
        let data: Vec<u32> = (0..12).collect();
        let out = run_world_pooled(4, 1, 0, WorldConfig::default(), |c| {
            c.scatter(0, if c.rank() == 0 { Some(&data[..]) } else { None })
        });
        assert_eq!(out[0], vec![0, 1, 2]);
        assert_eq!(out[3], vec![9, 10, 11]);
    }

    #[test]
    fn pooled_nonzero_root_is_scheduled_first() {
        // Root = last rank (the planner's convention): gather to it on a
        // minimal pool.
        let out = run_world_pooled(5, 2, 4, WorldConfig::default(), |c| {
            c.gatherv(4, &[c.rank() as u64])
        });
        assert_eq!(out[4].as_ref().unwrap(), &vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pooled_wide_world_on_small_pool() {
        // 64 logical ranks on 4 workers: far wider than the pool.
        let data: Vec<u64> = (0..64).collect();
        let out = run_world_pooled(64, 4, 0, WorldConfig::default(), |c| {
            let mine =
                c.scatterv(0, if c.rank() == 0 { Some(&data[..]) } else { None }, &[1usize; 64]);
            mine[0]
        });
        assert_eq!(out, (0..64u64).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_rank_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_world_pooled(4, 2, 0, WorldConfig::default(), |c| {
                if c.rank() == 3 {
                    panic!("pooled worker exploded");
                }
                c.rank()
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn rank_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_world(2, WorldConfig::default(), |c| {
                if c.rank() == 1 {
                    panic!("worker exploded");
                }
                // Rank 0 does not wait on rank 1, so it exits cleanly.
                c.rank()
            })
        });
        assert!(result.is_err());
    }
}
