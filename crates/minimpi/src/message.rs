//! In-flight message representation and tag matching.

/// A message tag. User tags occupy the low half of the space; collective
/// operations use reserved tags namespaced by a per-communicator sequence
/// number so that back-to-back collectives can never cross-match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u64);

impl Tag {
    /// Highest user tag value.
    pub const MAX_USER: u64 = (1 << 32) - 1;

    /// A user tag.
    ///
    /// # Panics
    /// Panics if `t` exceeds [`Tag::MAX_USER`].
    pub fn user(t: u64) -> Tag {
        assert!(t <= Tag::MAX_USER, "user tags must be < 2^32");
        Tag(t)
    }

    /// An internal collective tag: `opcode` identifies the collective,
    /// `seq` the per-communicator invocation counter.
    pub(crate) fn collective(opcode: u8, seq: u64) -> Tag {
        Tag((1 << 63) | ((opcode as u64) << 48) | (seq & 0xffff_ffff_ffff))
    }
}

impl From<u64> for Tag {
    fn from(t: u64) -> Tag {
        Tag::user(t)
    }
}

/// A message in flight.
#[derive(Debug)]
pub(crate) struct Message {
    /// Sender rank.
    pub src: usize,
    /// Tag.
    pub tag: Tag,
    /// Virtual completion time of the transfer at the sender.
    pub timestamp: f64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_tags_ok() {
        assert_eq!(Tag::user(0), Tag(0));
        assert_eq!(Tag::user(Tag::MAX_USER).0, Tag::MAX_USER);
        assert_eq!(Tag::from(17u64), Tag(17));
    }

    #[test]
    #[should_panic(expected = "user tags")]
    fn oversized_user_tag_panics() {
        let _ = Tag::user(1 << 32);
    }

    #[test]
    fn collective_tags_disjoint_from_user() {
        let c = Tag::collective(3, 12);
        assert!(c.0 > Tag::MAX_USER);
        assert_ne!(Tag::collective(3, 12), Tag::collective(3, 13));
        assert_ne!(Tag::collective(2, 12), Tag::collective(3, 12));
    }
}
