//! # gs-minimpi — an MPI-like message-passing runtime on threads
//!
//! The paper's application runs on MPICH-G2 over a two-site grid. To make
//! this reproduction executable on a single machine — with the *same
//! communication structure* — this crate provides a small message-passing
//! runtime:
//!
//! * **ranks are OS threads** exchanging real bytes over channels
//!   (crossbeam), so programs written against it actually move data and
//!   compute results; worlds wider than the machine can instead
//!   multiplex thousands of logical ranks onto a bounded worker pool
//!   ([`run_world_pooled`]) with bit-identical results for the
//!   root-centric patterns documented in `docs/simulation.md`;
//! * collectives (`scatter`, `scatterv`, `gather`, `gatherv`, `bcast`,
//!   `barrier`, `reduce`, `allreduce`) are implemented over point-to-point
//!   sends with the **root serializing its transfers in rank order** — the
//!   single-port behaviour §2.3 observed on the real grid (MPICH's scatter
//!   order follows processor ranks, footnote 1 of the paper);
//! * an optional **virtual-time model** replays the grid's heterogeneity
//!   deterministically: every rank carries a virtual clock; a transfer of
//!   `b` bytes to rank `i` advances the sender's clock by `link[i](b)` and
//!   the receiver synchronizes to the message's completion timestamp, so a
//!   program's maximum final clock equals the makespan the analytic model
//!   predicts. Compute phases advance clocks explicitly
//!   ([`Comm::advance`] / [`Comm::model_compute`]).
//!
//! This is the substitution documented in DESIGN.md for the MPI testbed:
//! the scheduling-relevant semantics (order, single port, heterogeneity)
//! are preserved; TCP is not.
//!
//! ## Example
//!
//! ```
//! use gs_minimpi::{run_world, WorldConfig};
//!
//! let sums = run_world(4, WorldConfig::default(), |comm| {
//!     // Root scatters uneven blocks; everyone sums its block.
//!     let data: Vec<u64> = (0..100).collect();
//!     let mine = comm.scatterv(0, Some(&data), &[40, 30, 20, 10]);
//!     let partial: u64 = mine.iter().sum();
//!     comm.reduce(0, partial, |a, b| a + b)
//! });
//! assert_eq!(sums[0], Some((0..100u64).sum()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod collective_ext;
mod comm;
mod datum;
mod ft;
mod message;
mod nonblocking;
mod time;
mod trace;
mod world;

pub use comm::Comm;
pub use datum::Datum;
pub use ft::{executed_trace_ft, FtConfig};
pub use message::Tag;
pub use nonblocking::RecvRequest;
pub use time::TimeModel;
pub use trace::{executed_trace, CommOp, CommRecord};
pub use world::{run_world, run_world_pooled, WorldConfig};
