//! Plain-old-data encoding for message payloads.
//!
//! Messages travel as byte vectors; [`Datum`] gives fixed-width
//! little-endian codecs for the primitive types scientific payloads are
//! made of. No serde: the formats are trivial, and keeping the runtime
//! dependency-light matters more than generality here.

/// A fixed-width plain-old-data element that can cross rank boundaries.
pub trait Datum: Copy + Send + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Appends the little-endian encoding of `self` to `out`.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Decodes from exactly [`Self::WIDTH`] bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_datum {
    ($($t:ty),*) => {$(
        impl Datum for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact width"))
            }
        }
    )*};
}
impl_datum!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Encodes a slice of datums as bytes.
pub fn encode<T: Datum>(data: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * T::WIDTH);
    for d in data {
        d.write_le(&mut out);
    }
    out
}

/// Decodes bytes produced by [`encode`].
///
/// # Panics
/// Panics if the byte length is not a multiple of the datum width.
pub fn decode<T: Datum>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(
        bytes.len() % T::WIDTH,
        0,
        "payload length {} is not a multiple of the datum width {}",
        bytes.len(),
        T::WIDTH
    );
    bytes.chunks_exact(T::WIDTH).map(T::read_le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64() {
        let data = vec![0u64, 1, u64::MAX, 42];
        assert_eq!(decode::<u64>(&encode(&data)), data);
    }

    #[test]
    fn round_trip_f64() {
        let data = vec![0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE, 3.125];
        assert_eq!(decode::<f64>(&encode(&data)), data);
    }

    #[test]
    fn round_trip_all_widths() {
        assert_eq!(decode::<u8>(&encode(&[1u8, 2])), vec![1, 2]);
        assert_eq!(decode::<i16>(&encode(&[-5i16])), vec![-5]);
        assert_eq!(decode::<u32>(&encode(&[7u32])), vec![7]);
        assert_eq!(decode::<i64>(&encode(&[-9i64])), vec![-9]);
        assert_eq!(decode::<f32>(&encode(&[2.5f32])), vec![2.5]);
    }

    #[test]
    fn empty_slice() {
        assert_eq!(decode::<f64>(&encode::<f64>(&[])), Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "multiple of the datum width")]
    fn misaligned_payload_panics() {
        let _ = decode::<u64>(&[1, 2, 3]);
    }
}
