//! Property test: the simplex optimum of a random 2-variable LP matches a
//! brute-force oracle that enumerates all candidate vertices exactly.
//!
//! For `max c'x` over `{x >= 0, a_i . x <= b_i}`, an optimum (when one
//! exists) lies at the intersection of two active constraints (including the
//! axes). We enumerate all pairwise intersections, keep the feasible ones,
//! and compare the best objective with the solver's.

use gs_lp::{LpProblem, Sense};
use gs_numeric::Rational;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Lp2 {
    c: [Rational; 2],
    rows: Vec<([Rational; 2], Rational)>, // a.x <= b, with b >= 0 so x=0 is feasible
}

fn lp2_strategy() -> impl Strategy<Value = Lp2> {
    let coef = -5i64..=5;
    let rhs = 0i64..=20;
    let row = (coef.clone(), coef.clone(), rhs).prop_map(|(a0, a1, b)| {
        (
            [Rational::from(a0), Rational::from(a1)],
            Rational::from(b),
        )
    });
    (
        (coef.clone(), coef).prop_map(|(c0, c1)| [Rational::from(c0), Rational::from(c1)]),
        proptest::collection::vec(row, 1..6),
    )
        .prop_map(|(c, rows)| Lp2 { c, rows })
}

/// All candidate vertices: intersections of constraint/axis pairs.
fn candidate_vertices(lp: &Lp2) -> Vec<[Rational; 2]> {
    let mut lines: Vec<([Rational; 2], Rational)> = lp.rows.clone();
    // Axes x0 = 0 and x1 = 0.
    lines.push(([Rational::one(), Rational::zero()], Rational::zero()));
    lines.push(([Rational::zero(), Rational::one()], Rational::zero()));
    let mut out = Vec::new();
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            let (a, b) = (&lines[i], &lines[j]);
            let det = &a.0[0] * &b.0[1] - &a.0[1] * &b.0[0];
            if det.is_zero() {
                continue;
            }
            let x0 = (&a.1 * &b.0[1] - &a.0[1] * &b.1) / &det;
            let x1 = (&a.0[0] * &b.1 - &a.1 * &b.0[0]) / &det;
            out.push([x0, x1]);
        }
    }
    out
}

fn feasible(lp: &Lp2, x: &[Rational; 2]) -> bool {
    if x[0].is_negative() || x[1].is_negative() {
        return false;
    }
    lp.rows.iter().all(|(a, b)| {
        let lhs = &a[0] * &x[0] + &a[1] * &x[1];
        lhs <= *b
    })
}

fn objective(lp: &Lp2, x: &[Rational; 2]) -> Rational {
    &lp.c[0] * &x[0] + &lp.c[1] * &x[1]
}

/// Is the LP unbounded? max c'x with x >= 0: unbounded iff there is a ray
/// direction d >= 0, c.d > 0, with a_i.d <= 0 for all i. For 2 variables we
/// test the extreme rays of candidate directions: axes and edge directions.
fn has_improving_ray(lp: &Lp2) -> bool {
    let mut dirs: Vec<[Rational; 2]> = vec![
        [Rational::one(), Rational::zero()],
        [Rational::zero(), Rational::one()],
        [Rational::one(), Rational::one()],
    ];
    // Edge directions of each constraint line, both orientations.
    for (a, _) in &lp.rows {
        dirs.push([a[1].clone(), -a[0].clone()]);
        dirs.push([-a[1].clone(), a[0].clone()]);
    }
    dirs.iter().any(|d| {
        !d[0].is_negative()
            && !d[1].is_negative()
            && objective(lp, d).is_positive()
            && lp
                .rows
                .iter()
                .all(|(a, _)| !(&a[0] * &d[0] + &a[1] * &d[1]).is_positive())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn simplex_matches_vertex_enumeration(lp2 in lp2_strategy()) {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x0 = lp.add_var("x0");
        let x1 = lp.add_var("x1");
        lp.set_objective([(x0, lp2.c[0].clone()), (x1, lp2.c[1].clone())]);
        for (a, b) in &lp2.rows {
            lp.add_le([(x0, a[0].clone()), (x1, a[1].clone())], b.clone());
        }
        let result = lp.solve();

        // Origin is always feasible (b >= 0), so never infeasible.
        match result {
            Err(gs_lp::LpError::Infeasible) => prop_assert!(false, "origin is feasible"),
            Err(gs_lp::LpError::Unbounded) => {
                prop_assert!(has_improving_ray(&lp2), "solver says unbounded, oracle disagrees");
            }
            Ok(sol) => {
                prop_assert!(!has_improving_ray(&lp2), "oracle says unbounded, solver disagrees");
                // Solver's point must be feasible.
                let x = [sol[x0].clone(), sol[x1].clone()];
                prop_assert!(feasible(&lp2, &x), "solver returned infeasible point");
                prop_assert_eq!(objective(&lp2, &x), sol.objective.clone());
                // No candidate vertex beats it.
                let best = candidate_vertices(&lp2)
                    .into_iter()
                    .filter(|v| feasible(&lp2, v))
                    .map(|v| objective(&lp2, &v))
                    .max()
                    .unwrap_or_else(Rational::zero);
                prop_assert_eq!(sol.objective, best);
            }
        }
    }
}
