//! # gs-lp — exact linear programming over rationals
//!
//! A dense two-phase primal simplex solver with Bland's anti-cycling rule,
//! pivoting over [`gs_numeric::Rational`]. Exactness matters here: the
//! guaranteed heuristic of RR-4770 §3.3 rounds the *rational optimum* of the
//! scatter LP (Eq. 3), and its guarantee (Eq. 4) is stated relative to that
//! exact optimum. The paper used PIP/pipMP; this crate is the self-contained
//! replacement.
//!
//! ## Example
//!
//! ```
//! use gs_lp::{LpProblem, Sense};
//! use gs_numeric::Rational;
//!
//! // maximize x + y  s.t.  x + 2y <= 4,  3x + y <= 6,  x,y >= 0
//! let mut lp = LpProblem::new(Sense::Maximize);
//! let x = lp.add_var("x");
//! let y = lp.add_var("y");
//! lp.set_objective([(x, 1.into()), (y, 1.into())]);
//! lp.add_le([(x, 1.into()), (y, 2.into())], Rational::from(4));
//! lp.add_le([(x, 3.into()), (y, 1.into())], Rational::from(6));
//! let sol = lp.solve().unwrap();
//! assert_eq!(sol.objective, Rational::from_ratio(14, 5));
//! assert_eq!(sol[x], Rational::from_ratio(8, 5));
//! assert_eq!(sol[y], Rational::from_ratio(6, 5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod simplex;

pub use model::{Constraint, LpError, LpProblem, Relation, Sense, Solution, VarId};
