//! Two-phase primal simplex on a dense rational tableau.
//!
//! Bland's rule (smallest-index entering and leaving variables) guarantees
//! termination even on degenerate problems; with exact rational pivots there
//! is no tolerance tuning and the returned vertex is the true optimum.

use gs_numeric::Rational;

use crate::model::LpError;

/// `min c'x  s.t.  Ax = b, x >= 0` with `b >= 0` (callers normalize signs).
pub(crate) struct StandardForm {
    /// Constraint matrix, `m x n`.
    pub a: Vec<Vec<Rational>>,
    /// Right-hand side, length `m`, all non-negative.
    pub b: Vec<Rational>,
    /// Objective coefficients, length `n`.
    pub c: Vec<Rational>,
}

/// Dense simplex tableau. Column layout: the `n` structural columns of the
/// standard form, then (during phase 1) one artificial column per row.
struct Tableau {
    /// `m` rows of `width + 1` entries; the last entry is the RHS.
    rows: Vec<Vec<Rational>>,
    /// Reduced-cost row (`width` entries) plus the negated objective value.
    obj: Vec<Rational>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
}

impl Tableau {
    /// Performs a pivot on `(row, col)`: the column enters the basis.
    fn pivot(&mut self, row: usize, col: usize) {
        let inv = self.rows[row][col].recip();
        for x in &mut self.rows[row] {
            *x = &*x * &inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, cur) in self.rows.iter_mut().enumerate() {
            if r == row || cur[col].is_zero() {
                continue;
            }
            let factor = cur[col].clone();
            for (x, p) in cur.iter_mut().zip(&pivot_row) {
                *x -= &(&factor * p);
            }
        }
        if !self.obj[col].is_zero() {
            let factor = self.obj[col].clone();
            for (x, p) in self.obj.iter_mut().zip(&pivot_row) {
                *x -= &(&factor * p);
            }
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop until optimality or unboundedness.
    ///
    /// `usable` bounds the columns eligible to enter (used to exclude
    /// artificial columns in phase 2).
    ///
    /// Pivot rule: Dantzig (most-negative reduced cost) for speed, with a
    /// permanent switch to Bland's smallest-index rule once the objective
    /// has stalled for more than `m + n` pivots — degenerate stalls are
    /// the only way cycling can start, and Bland guarantees termination.
    fn optimize(&mut self, usable: usize) -> Result<(), LpError> {
        let stall_limit = self.rows.len() + usable + 4;
        let mut stalled = 0usize;
        let mut bland = false;
        loop {
            let col = if bland {
                (0..usable).find(|&j| self.obj[j].is_negative())
            } else {
                // Dantzig: most negative reduced cost.
                let mut best: Option<usize> = None;
                for j in 0..usable {
                    if self.obj[j].is_negative()
                        && best.is_none_or(|b| self.obj[j] < self.obj[b])
                    {
                        best = Some(j);
                    }
                }
                best
            };
            let Some(col) = col else {
                return Ok(());
            };
            // Leaving row: minimum ratio; ties by smallest basic index (Bland).
            let mut best: Option<(usize, Rational)> = None;
            for r in 0..self.rows.len() {
                let a_rc = &self.rows[r][col];
                if !a_rc.is_positive() {
                    continue;
                }
                let ratio = self.rows[r].last().unwrap() / a_rc;
                match &best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < *bratio
                            || (ratio == *bratio && self.basis[r] < self.basis[*br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
            let Some((row, ratio)) = best else {
                return Err(LpError::Unbounded);
            };
            // A zero ratio means a degenerate pivot: no objective movement.
            if ratio.is_zero() {
                stalled += 1;
                if stalled > stall_limit {
                    bland = true;
                }
            } else {
                stalled = 0;
            }
            self.pivot(row, col);
        }
    }

    /// Installs an objective row for the given costs (length `width`) and
    /// prices out the current basis so reduced costs are consistent.
    fn set_objective(&mut self, costs: &[Rational]) {
        self.obj = costs.to_vec();
        self.obj.push(Rational::zero());
        for r in 0..self.rows.len() {
            let b = self.basis[r];
            if !self.obj[b].is_zero() {
                let factor = self.obj[b].clone();
                let row = self.rows[r].clone();
                for (x, p) in self.obj.iter_mut().zip(&row) {
                    *x -= &(&factor * p);
                }
            }
        }
    }
}

/// Solves the standard form, returning the optimal values of the `n`
/// structural variables.
pub(crate) fn solve(sf: &StandardForm) -> Result<Vec<Rational>, LpError> {
    let m = sf.a.len();
    let n = sf.c.len();
    debug_assert!(sf.b.iter().all(|v| !v.is_negative()), "b must be >= 0");

    // Phase 1 tableau: [A | I_art | b], basis = artificials.
    let width = n + m;
    let mut rows = Vec::with_capacity(m);
    for r in 0..m {
        let mut row = Vec::with_capacity(width + 1);
        row.extend(sf.a[r].iter().cloned());
        for j in 0..m {
            row.push(if j == r { Rational::one() } else { Rational::zero() });
        }
        row.push(sf.b[r].clone());
        rows.push(row);
    }
    let mut t = Tableau {
        rows,
        obj: Vec::new(),
        basis: (n..n + m).collect(),
    };

    if m > 0 {
        // Phase 1: minimize the sum of artificials.
        let mut phase1_costs = vec![Rational::zero(); width];
        for c in phase1_costs[n..n + m].iter_mut() {
            *c = Rational::one();
        }
        t.set_objective(&phase1_costs);
        t.optimize(width)?;
        // Optimal phase-1 value is -obj[width].
        if !t.obj[width].is_zero() {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial variables out of the basis; drop redundant rows.
        let mut r = 0;
        while r < t.rows.len() {
            if t.basis[r] >= n {
                // Degenerate artificial basic (value must be 0 here).
                debug_assert!(t.rows[r].last().unwrap().is_zero());
                if let Some(col) = (0..n).find(|&j| !t.rows[r][j].is_zero()) {
                    t.pivot(r, col);
                } else {
                    // Row is 0 = 0 over structural columns: redundant.
                    t.rows.remove(r);
                    t.basis.remove(r);
                    continue;
                }
            }
            r += 1;
        }
    }

    // Phase 2: the real objective over structural columns only.
    let mut phase2_costs = sf.c.clone();
    phase2_costs.resize(width, Rational::zero());
    // Forbid artificial columns from re-entering by pricing them at +inf
    // effect: we simply never consider them (usable = n).
    t.set_objective(&phase2_costs);
    t.optimize(n)?;

    let mut x = vec![Rational::zero(); n];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < n {
            x[b] = t.rows[r].last().unwrap().clone();
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn sf(a: Vec<Vec<i64>>, b: Vec<i64>, c: Vec<i64>) -> StandardForm {
        StandardForm {
            a: a.into_iter()
                .map(|row| row.into_iter().map(|v| r(v, 1)).collect())
                .collect(),
            b: b.into_iter().map(|v| r(v, 1)).collect(),
            c: c.into_iter().map(|v| r(v, 1)).collect(),
        }
    }

    #[test]
    fn standard_form_direct() {
        // min -x1 - x2 s.t. x1 + x2 + s = 4 => optimum x1+x2 = 4.
        let form = sf(vec![vec![1, 1, 1]], vec![4], vec![-1, -1, 0]);
        let x = solve(&form).unwrap();
        assert_eq!(&x[0] + &x[1], r(4, 1));
        assert_eq!(x[2], r(0, 1));
    }

    #[test]
    fn infeasible_standard_form() {
        // x1 = -? impossible: x1 + x2 = 1 and x1 + x2 = 2.
        let form = sf(
            vec![vec![1, 1], vec![1, 1]],
            vec![1, 2],
            vec![1, 1],
        );
        assert_eq!(solve(&form), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_standard_form() {
        // min -x1 s.t. x1 - x2 = 0: x1 can grow forever with x2.
        let form = sf(vec![vec![1, -1]], vec![0], vec![-1, 0]);
        assert_eq!(solve(&form), Err(LpError::Unbounded));
    }

    #[test]
    fn empty_problem() {
        let form = sf(vec![], vec![], vec![1, 1]);
        let x = solve(&form).unwrap();
        assert_eq!(x, vec![r(0, 1), r(0, 1)]);
    }
}
