//! Linear-program model builder and lowering to standard form.

use std::fmt;
use std::ops::Index;

use gs_numeric::Rational;

use crate::simplex::{self, StandardForm};

/// Handle to a decision variable of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A linear constraint `sum(coef_i * x_i)  REL  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse coefficient list `(variable, coefficient)`.
    pub terms: Vec<(VarId, Rational)>,
    /// Constraint relation.
    pub relation: Relation,
    /// Right-hand side constant.
    pub rhs: Rational,
}

/// Why an LP has no optimal solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => f.write_str("linear program is infeasible"),
            LpError::Unbounded => f.write_str("linear program is unbounded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution: one value per declared variable plus the objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Optimal value of each variable, indexed by [`VarId`].
    pub values: Vec<Rational>,
    /// Optimal objective value (in the problem's original sense).
    pub objective: Rational,
}

impl Index<VarId> for Solution {
    type Output = Rational;
    fn index(&self, v: VarId) -> &Rational {
        &self.values[v.0]
    }
}

/// A linear program under construction.
///
/// Variables are non-negative by default; [`LpProblem::add_free_var`]
/// declares a sign-unrestricted variable (lowered internally as the
/// difference of two non-negative variables).
#[derive(Debug, Clone)]
pub struct LpProblem {
    sense: Sense,
    names: Vec<String>,
    free: Vec<bool>,
    objective: Vec<Rational>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        LpProblem {
            sense,
            names: Vec::new(),
            free: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Declares a non-negative variable.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.free.push(false);
        self.objective.push(Rational::zero());
        VarId(self.names.len() - 1)
    }

    /// Declares a sign-unrestricted variable.
    pub fn add_free_var(&mut self, name: impl Into<String>) -> VarId {
        let v = self.add_var(name);
        self.free[v.0] = true;
        v
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Sets the objective coefficients (unset variables keep coefficient 0).
    pub fn set_objective(&mut self, terms: impl IntoIterator<Item = (VarId, Rational)>) {
        for c in &mut self.objective {
            *c = Rational::zero();
        }
        for (v, c) in terms {
            self.objective[v.0] = c;
        }
    }

    /// Adds `terms <= rhs`.
    pub fn add_le(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, Rational)>,
        rhs: Rational,
    ) {
        self.add_constraint(terms, Relation::Le, rhs);
    }

    /// Adds `terms >= rhs`.
    pub fn add_ge(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, Rational)>,
        rhs: Rational,
    ) {
        self.add_constraint(terms, Relation::Ge, rhs);
    }

    /// Adds `terms == rhs`.
    pub fn add_eq(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, Rational)>,
        rhs: Rational,
    ) {
        self.add_constraint(terms, Relation::Eq, rhs);
    }

    /// Adds a constraint with an explicit [`Relation`].
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, Rational)>,
        relation: Relation,
        rhs: Rational,
    ) {
        self.constraints.push(Constraint {
            terms: terms.into_iter().collect(),
            relation,
            rhs,
        });
    }

    /// Solves the problem exactly.
    ///
    /// Returns the optimal [`Solution`], or an [`LpError`] when the program
    /// is infeasible or unbounded.
    pub fn solve(&self) -> Result<Solution, LpError> {
        let (std_form, recover) = self.lower();
        let std_sol = simplex::solve(&std_form)?;
        // Recover original variable values.
        let mut values = Vec::with_capacity(self.num_vars());
        for r in &recover {
            match r {
                Recover::Direct(i) => values.push(std_sol[*i].clone()),
                Recover::Split(p, m) => values.push(&std_sol[*p] - &std_sol[*m]),
            }
        }
        // Compute the objective from the recovered values in the ORIGINAL
        // sense — avoids any sign bookkeeping with the lowered form.
        let mut objective = Rational::zero();
        for (i, c) in self.objective.iter().enumerate() {
            if !c.is_zero() {
                objective += &(c * &values[i]);
            }
        }
        Ok(Solution { values, objective })
    }

    /// Checks whether an assignment satisfies every constraint (and the
    /// non-negativity of non-free variables). Used by tests and as a cheap
    /// post-solve sanity check.
    pub fn is_feasible(&self, values: &[Rational]) -> bool {
        if values.len() != self.num_vars() {
            return false;
        }
        for (i, v) in values.iter().enumerate() {
            if !self.free[i] && v.is_negative() {
                return false;
            }
        }
        for c in &self.constraints {
            let mut lhs = Rational::zero();
            for (v, coef) in &c.terms {
                lhs += &(coef * &values[v.0]);
            }
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs,
                Relation::Ge => lhs >= c.rhs,
                Relation::Eq => lhs == c.rhs,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Lowers to standard form `min c'x  s.t.  Ax = b, x >= 0, b >= 0`.
    fn lower(&self) -> (StandardForm, Vec<Recover>) {
        // Map original variables to standard-form columns.
        let mut recover = Vec::with_capacity(self.num_vars());
        let mut n = 0usize;
        for &is_free in &self.free {
            if is_free {
                recover.push(Recover::Split(n, n + 1));
                n += 2;
            } else {
                recover.push(Recover::Direct(n));
                n += 1;
            }
        }
        let n_struct = n;
        // One slack/surplus column per inequality.
        let n_slack = self
            .constraints
            .iter()
            .filter(|c| c.relation != Relation::Eq)
            .count();
        let n_total = n_struct + n_slack;

        let m = self.constraints.len();
        let mut a = vec![vec![Rational::zero(); n_total]; m];
        let mut b = vec![Rational::zero(); m];
        let mut slack_col = n_struct;
        for (row, c) in self.constraints.iter().enumerate() {
            for (v, coef) in &c.terms {
                match recover[v.0] {
                    Recover::Direct(col) => a[row][col] += coef,
                    Recover::Split(p, mcol) => {
                        a[row][p] += coef;
                        a[row][mcol] -= coef;
                    }
                }
            }
            b[row] = c.rhs.clone();
            match c.relation {
                Relation::Le => {
                    a[row][slack_col] = Rational::one();
                    slack_col += 1;
                }
                Relation::Ge => {
                    a[row][slack_col] = -Rational::one();
                    slack_col += 1;
                }
                Relation::Eq => {}
            }
            // Normalize to b >= 0.
            if b[row].is_negative() {
                for x in &mut a[row] {
                    *x = -x.clone();
                }
                b[row] = -b[row].clone();
            }
        }

        // Objective in minimize sense.
        let mut c_std = vec![Rational::zero(); n_total];
        for (i, coef) in self.objective.iter().enumerate() {
            let coef = match self.sense {
                Sense::Minimize => coef.clone(),
                Sense::Maximize => -coef.clone(),
            };
            match recover[i] {
                Recover::Direct(col) => c_std[col] += &coef,
                Recover::Split(p, mcol) => {
                    c_std[p] += &coef;
                    c_std[mcol] -= &coef;
                }
            }
        }

        (StandardForm { a, b, c: c_std }, recover)
    }
}

/// How to recover an original variable from standard-form columns.
enum Recover {
    Direct(usize),
    Split(usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn classic_max_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), obj 36
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective([(x, r(3, 1)), (y, r(5, 1))]);
        lp.add_le([(x, r(1, 1))], r(4, 1));
        lp.add_le([(y, r(2, 1))], r(12, 1));
        lp.add_le([(x, r(3, 1)), (y, r(2, 1))], r(18, 1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, r(36, 1));
        assert_eq!(sol[x], r(2, 1));
        assert_eq!(sol[y], r(6, 1));
        assert!(lp.is_feasible(&sol.values));
    }

    #[test]
    fn min_with_ge_constraints_needs_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 => x=7, y=3, obj 23
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective([(x, r(2, 1)), (y, r(3, 1))]);
        lp.add_ge([(x, r(1, 1)), (y, r(1, 1))], r(10, 1));
        lp.add_ge([(x, r(1, 1))], r(2, 1));
        lp.add_ge([(y, r(1, 1))], r(3, 1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, r(23, 1));
        assert_eq!(sol[x], r(7, 1));
        assert_eq!(sol[y], r(3, 1));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y == 6, x - y == 0 => x = y = 2, obj 4
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective([(x, r(1, 1)), (y, r(1, 1))]);
        lp.add_eq([(x, r(1, 1)), (y, r(2, 1))], r(6, 1));
        lp.add_eq([(x, r(1, 1)), (y, r(-1, 1))], r(0, 1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol[x], r(2, 1));
        assert_eq!(sol[y], r(2, 1));
        assert_eq!(sol.objective, r(4, 1));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        lp.set_objective([(x, r(1, 1))]);
        lp.add_le([(x, r(1, 1))], r(1, 1));
        lp.add_ge([(x, r(1, 1))], r(2, 1));
        assert_eq!(lp.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x");
        lp.set_objective([(x, r(1, 1))]);
        lp.add_ge([(x, r(1, 1))], r(1, 1));
        assert_eq!(lp.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn free_variable_goes_negative() {
        // min x s.t. x >= -5 with x free => x = -5
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_free_var("x");
        lp.set_objective([(x, r(1, 1))]);
        lp.add_ge([(x, r(1, 1))], r(-5, 1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol[x], r(-5, 1));
    }

    #[test]
    fn negative_rhs_normalized() {
        // min y s.t. -x - y <= -4 (i.e. x + y >= 4), x <= 3 => y = 1
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective([(y, r(1, 1))]);
        lp.add_le([(x, r(-1, 1)), (y, r(-1, 1))], r(-4, 1));
        lp.add_le([(x, r(1, 1))], r(3, 1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol[y], r(1, 1));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate vertex; Bland's rule guarantees termination.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x1 = lp.add_var("x1");
        let x2 = lp.add_var("x2");
        let x3 = lp.add_var("x3");
        lp.set_objective([(x1, r(10, 1)), (x2, r(-57, 1)), (x3, r(-9, 1))]);
        lp.add_le([(x1, r(1, 2)), (x2, r(-11, 2)), (x3, r(-5, 2))], r(0, 1));
        lp.add_le([(x1, r(1, 2)), (x2, r(-3, 2)), (x3, r(-1, 2))], r(0, 1));
        lp.add_le([(x1, r(1, 1))], r(1, 1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective, r(1, 1));
        assert_eq!(sol[x1], r(1, 1));
    }

    #[test]
    fn zero_constraint_problem() {
        // No constraints, minimize x => x = 0.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        lp.set_objective([(x, r(1, 1))]);
        let sol = lp.solve().unwrap();
        assert_eq!(sol[x], r(0, 1));
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 2 stated twice: phase 1 must drop the redundant row.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective([(x, r(1, 1))]);
        lp.add_eq([(x, r(1, 1)), (y, r(1, 1))], r(2, 1));
        lp.add_eq([(x, r(1, 1)), (y, r(1, 1))], r(2, 1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol[x], r(0, 1));
        assert_eq!(sol[y], r(2, 1));
    }

    #[test]
    fn exact_fractional_optimum() {
        // The doc-test example: optimum at a fractional vertex, exactly.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective([(x, r(1, 1)), (y, r(1, 1))]);
        lp.add_le([(x, r(1, 1)), (y, r(2, 1))], r(4, 1));
        lp.add_le([(x, r(3, 1)), (y, r(1, 1))], r(6, 1));
        let sol = lp.solve().unwrap();
        assert_eq!(sol[x], r(8, 5));
        assert_eq!(sol[y], r(6, 5));
        assert_eq!(sol.objective, r(14, 5));
    }

    #[test]
    fn feasibility_checker() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        lp.add_le([(x, r(1, 1))], r(5, 1));
        assert!(lp.is_feasible(&[r(5, 1)]));
        assert!(lp.is_feasible(&[r(0, 1)]));
        assert!(!lp.is_feasible(&[r(6, 1)]));
        assert!(!lp.is_feasible(&[r(-1, 1)]));
        assert!(!lp.is_feasible(&[]));
    }
}
