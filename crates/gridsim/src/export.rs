//! Machine-readable export of run results (CSV and observability-trace
//! JSON), for plotting the figures with external tools and for
//! `gs report`.

use std::io::{self, Write};
use std::path::Path;

use gs_scatter::distribution::Timeline;
use gs_scatter::obs::{json, Trace};

/// Serializes a run (scatter order) as CSV with header
/// `pos,name,data,comm_start,comm_end,finish`.
pub fn to_csv(names: &[&str], counts: &[usize], tl: &Timeline) -> String {
    assert_eq!(names.len(), counts.len());
    assert_eq!(names.len(), tl.finish.len());
    let mut out = String::from("pos,name,data,comm_start,comm_end,finish\n");
    for i in 0..names.len() {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6}\n",
            i,
            escape(names[i]),
            counts[i],
            tl.comm_start[i],
            tl.comm_end[i],
            tl.finish[i]
        ));
    }
    out
}

/// Writes [`to_csv`] output to a file.
pub fn write_csv(
    path: impl AsRef<Path>,
    names: &[&str],
    counts: &[usize],
    tl: &Timeline,
) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(names, counts, tl).as_bytes())
}

/// Writes a trace as a schema-versioned JSON document (the
/// `docs/observability.md` format, readable by `gs report`).
pub fn write_trace_json(path: impl AsRef<Path>, trace: &Trace) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(json::trace_to_json(trace).as_bytes())
}

/// Writes a trace as per-event CSV (`gs_scatter::obs::csv` columns).
pub fn write_trace_csv(path: impl AsRef<Path>, trace: &Trace) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(gs_scatter::obs::csv::trace_to_csv(trace).as_bytes())
}

/// Minimal CSV field escaping (quotes fields containing `,` or `"`).
fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> Timeline {
        Timeline {
            comm_start: vec![0.0, 1.5],
            comm_end: vec![1.5, 2.0],
            finish: vec![5.0, 6.0],
        }
    }

    #[test]
    fn csv_shape() {
        let csv = to_csv(&["a", "b"], &[10, 20], &tl());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "pos,name,data,comm_start,comm_end,finish");
        assert!(lines[1].starts_with("0,a,10,0.000000,1.500000,5.000000"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn write_trace_json_round_trips() {
        use gs_scatter::obs::{json::trace_from_json, Trace, TraceSource};
        let trace =
            Trace::from_timeline(TraceSource::Simulated, &["a", "b"], &[3, 1], 8, &tl());
        let dir = std::env::temp_dir().join("gs_gridsim_test_trace");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("trace.json");
        write_trace_json(&path, &trace).unwrap();
        let back = trace_from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, trace);
        let csv_path = dir.join("trace.csv");
        write_trace_csv(&csv_path, &trace).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("t,kind,rank,name,"));
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(csv_path);
    }

    #[test]
    fn write_csv_round_trip() {
        let dir = std::env::temp_dir().join("gs_gridsim_test_csv");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("run.csv");
        write_csv(&path, &["a", "b"], &[1, 2], &tl()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, to_csv(&["a", "b"], &[1, 2], &tl()));
        let _ = std::fs::remove_file(path);
    }
}
