//! # gs-gridsim — discrete-event grid simulator
//!
//! The paper evaluates its load-balanced scatters on a real two-site grid
//! (§5.1, Table 1). That testbed is long gone; this crate replaces it with
//! a discrete-event simulator of the same model:
//!
//! * a **single-port root**: one outgoing transfer at a time, serving
//!   processors in scatter order (the behaviour §2.3 observed in
//!   MPICH-G2, modelled after [Beaumont et al. 2002]);
//! * heterogeneous links and CPUs given by the same cost functions the
//!   planner uses ([`gs_scatter::cost::CostFn`]);
//! * optional **background-load traces** per processor — piecewise-constant
//!   slowdown factors that let experiments reproduce artifacts like the
//!   "peak load on sekhmet" the paper mentions for Fig. 4, and that support
//!   the §3 remark about re-querying a monitoring daemon (NWS-style)
//!   before each scatter.
//!
//! Without perturbations the simulated schedule coincides *exactly* with
//! the analytic Eq. (1)/(2) timeline — a property the test-suite enforces —
//! so the simulator earns its keep on the perturbed and multi-round
//! scenarios, and as the renderer of the paper's figures
//! ([`gantt`], [`chart`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bigsim;
pub mod calendar;
pub mod chart;
pub mod engine;
pub mod export;
pub mod fault;
pub mod gantt;
pub mod installments;
pub mod load;
pub mod masterworker;
pub mod metrics;
pub mod multiport;
pub mod sim;

pub use bigsim::{
    proportional_counts, simulate_star, simulate_synthetic_star, star_durations, synthetic_star,
    BigScatterSim,
};
pub use calendar::{CalendarQueue, CalendarStats};
pub use engine::{Engine, SimEvent, SimEventKind};
pub use fault::{simulate_plan_ft, simulate_scatter_ft, FtScatterSim, ReplanRecord};
pub use installments::{simulate_installments, split_installments, InstallmentRun};
pub use load::LoadTrace;
pub use masterworker::{simulate_master_worker, MasterWorkerConfig, MasterWorkerRun};
pub use metrics::RunMetrics;
pub use multiport::{simulate_multiport, MultiportConfig};
pub use sim::{simulate_plan, simulate_scatter, simulate_scatter_on, ScatterSim, SimConfig};

/// Re-export of the paper's Table-1 platform for convenience.
pub use gs_scatter::paper;
