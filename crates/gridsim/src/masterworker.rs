//! The dynamic baseline of §6: master/worker self-scheduling.
//!
//! The paper's related work contrasts its *static* distributions with
//! *dynamic* approaches ("the dynamic load evaluation and data
//! redistribution make the execution suffer from overheads that can be
//! avoided with a static approach", citing [12, 16]). This module
//! simulates that baseline so the claim can be measured instead of
//! quoted:
//!
//! * a dedicated master holds the `n` items; workers repeatedly request a
//!   *chunk* of `chunk_size` items;
//! * each request costs `request_latency` seconds of round-trip signalling
//!   before the master can start the transfer (on a grid this is
//!   WAN-scale);
//! * the master's outgoing port is single (same §2.3 model as the
//!   scatter), so chunk transfers serialize in request-arrival order.
//!
//! Strengths and weaknesses appear exactly where theory says: with free
//! requests and small chunks the dynamic scheme self-balances without
//! knowing the platform; with grid-scale latencies and many chunks it
//! drowns in signalling, and the static scatterv of the paper wins.

use std::cell::RefCell;
use std::rc::Rc;

use gs_scatter::cost::Processor;

use crate::engine::Engine;
use crate::load::LoadTrace;

/// Parameters of the master/worker run.
#[derive(Debug, Clone)]
pub struct MasterWorkerConfig {
    /// Items handed out per request.
    pub chunk_size: usize,
    /// One-way signalling cost of a request, seconds (paid before the
    /// master sees the request; the grant travels back with the data).
    pub request_latency: f64,
    /// Optional background load per worker (same length as the worker
    /// slice), empty for none.
    pub loads: Vec<LoadTrace>,
}

/// Outcome of a master/worker simulation.
#[derive(Debug, Clone)]
pub struct MasterWorkerRun {
    /// Completion time of the last chunk.
    pub makespan: f64,
    /// Items processed by each worker.
    pub items: Vec<usize>,
    /// Chunks served in total.
    pub chunks: usize,
    /// Fraction of the makespan the master's port spent transferring.
    pub master_utilization: f64,
}

struct MwState {
    remaining: usize,
    items: Vec<usize>,
    chunks: usize,
    port_busy_until: f64,
    busy_time: f64,
    last_finish: f64,
}

/// Simulates dynamic self-scheduling of `n` items over `workers`
/// (the master is dedicated and is **not** one of the workers — the
/// standard master/worker deployment the paper's §6 describes).
///
/// ```
/// use gs_gridsim::masterworker::{simulate_master_worker, MasterWorkerConfig};
/// use gs_scatter::cost::Processor;
///
/// let ws = vec![Processor::linear("w1", 0.0, 1.0), Processor::linear("w2", 0.0, 1.0)];
/// let view: Vec<&Processor> = ws.iter().collect();
/// let run = simulate_master_worker(&view, 10, &MasterWorkerConfig {
///     chunk_size: 2, request_latency: 0.0, loads: vec![],
/// });
/// assert_eq!(run.items.iter().sum::<usize>(), 10);
/// ```
pub fn simulate_master_worker(
    workers: &[&Processor],
    n: usize,
    config: &MasterWorkerConfig,
) -> MasterWorkerRun {
    assert!(!workers.is_empty(), "at least one worker");
    assert!(config.chunk_size > 0, "chunks must be non-empty");
    assert!(
        config.loads.is_empty() || config.loads.len() == workers.len(),
        "loads must be empty or match the worker count"
    );
    let w = workers.len();
    let loads = if config.loads.is_empty() {
        vec![LoadTrace::none(); w]
    } else {
        config.loads.clone()
    };
    let comm: Vec<f64> = workers.iter().map(|p| p.comm.eval(config.chunk_size)).collect();
    // Per-item compute times are evaluated per chunk below (chunks may be
    // short at the end).
    let state = Rc::new(RefCell::new(MwState {
        remaining: n,
        items: vec![0; w],
        chunks: 0,
        port_busy_until: 0.0,
        busy_time: 0.0,
        last_finish: 0.0,
    }));

    let mut engine = Engine::new();
    // Every worker's first request arrives after one latency.
    for i in 0..w {
        let st = state.clone();
        let workers_comp: Vec<_> = workers.iter().map(|p| p.comp.clone()).collect();
        let loads = loads.clone();
        let comm = comm.clone();
        let chunk = config.chunk_size;
        let latency = config.request_latency;
        engine.schedule_after(config.request_latency, move |e| {
            request_arrives(e, st, i, workers_comp, loads, comm, chunk, latency);
        });
    }
    engine.run();

    let st = state.borrow();
    let makespan = st.last_finish;
    MasterWorkerRun {
        makespan,
        items: st.items.clone(),
        chunks: st.chunks,
        master_utilization: if makespan > 0.0 { st.busy_time / makespan } else { 0.0 },
    }
}

#[allow(clippy::too_many_arguments)]
fn request_arrives(
    engine: &mut Engine,
    state: Rc<RefCell<MwState>>,
    worker: usize,
    comp: Vec<gs_scatter::cost::CostFn>,
    loads: Vec<LoadTrace>,
    comm: Vec<f64>,
    chunk: usize,
    latency: f64,
) {
    let (grant, send_start, send_end) = {
        let mut st = state.borrow_mut();
        if st.remaining == 0 {
            return; // nothing left: the worker retires
        }
        let grant = st.remaining.min(chunk);
        st.remaining -= grant;
        st.chunks += 1;
        st.items[worker] += grant;
        // The master serves requests as its port frees up.
        let send_start = st.port_busy_until.max(engine.now());
        // Short final chunks cost proportionally (linear interpolation on
        // the full-chunk transfer time).
        let dur = comm[worker] * grant as f64 / chunk as f64;
        let send_end = send_start + dur;
        st.port_busy_until = send_end;
        st.busy_time += dur;
        (grant, send_start, send_end)
    };
    let _ = send_start;
    // Chunk lands at send_end; the worker computes, then re-requests.
    engine.schedule_at(send_end, move |e| {
        let work = comp[worker].eval(grant);
        let finish = loads[worker].finish_time(e.now(), work);
        let st2 = state.clone();
        e.schedule_at(finish, move |e| {
            {
                let mut st = st2.borrow_mut();
                st.last_finish = st.last_finish.max(e.now());
                if st.remaining == 0 {
                    return;
                }
            }
            let st3 = st2.clone();
            e.schedule_after(latency, move |e| {
                request_arrives(e, st3, worker, comp, loads, comm, chunk, latency);
            });
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers() -> Vec<Processor> {
        vec![
            Processor::linear("fast", 0.01, 0.5),
            Processor::linear("slow", 0.01, 2.0),
        ]
    }

    fn cfg(chunk: usize, latency: f64) -> MasterWorkerConfig {
        MasterWorkerConfig { chunk_size: chunk, request_latency: latency, loads: vec![] }
    }

    #[test]
    fn all_items_processed_once() {
        let ws = workers();
        let view: Vec<&Processor> = ws.iter().collect();
        for (n, chunk) in [(100, 7), (50, 50), (1, 10), (64, 1)] {
            let run = simulate_master_worker(&view, n, &cfg(chunk, 0.1));
            assert_eq!(run.items.iter().sum::<usize>(), n, "n={n} chunk={chunk}");
            assert!(run.chunks >= n.div_ceil(chunk));
        }
    }

    #[test]
    fn self_balancing_favors_the_fast_worker() {
        let ws = workers();
        let view: Vec<&Processor> = ws.iter().collect();
        let run = simulate_master_worker(&view, 400, &cfg(10, 0.0));
        // fast (0.5 s/item) should take ~4x the slow worker's items.
        assert!(
            run.items[0] > 2 * run.items[1],
            "dynamic scheme must self-balance: {:?}",
            run.items
        );
    }

    #[test]
    fn latency_hurts() {
        let ws = workers();
        let view: Vec<&Processor> = ws.iter().collect();
        let cheap = simulate_master_worker(&view, 200, &cfg(10, 0.0)).makespan;
        let dear = simulate_master_worker(&view, 200, &cfg(10, 5.0)).makespan;
        assert!(dear > cheap + 5.0, "latency must show: {cheap} vs {dear}");
    }

    #[test]
    fn bigger_chunks_amortize_latency() {
        let ws = workers();
        let view: Vec<&Processor> = ws.iter().collect();
        let small = simulate_master_worker(&view, 200, &cfg(5, 2.0)).makespan;
        let large = simulate_master_worker(&view, 200, &cfg(50, 2.0)).makespan;
        assert!(large < small, "chunking must amortize latency: {large} vs {small}");
    }

    #[test]
    fn single_worker_serial_time() {
        let ws = [Processor::linear("only", 0.0, 1.0)];
        let view: Vec<&Processor> = ws.iter().collect();
        // Zero comm/latency: the makespan is exactly the serial compute.
        let run = simulate_master_worker(&view, 42, &cfg(7, 0.0));
        assert!((run.makespan - 42.0).abs() < 1e-9);
        assert_eq!(run.chunks, 6);
    }

    #[test]
    fn port_contention_serializes_chunks() {
        // Two identical workers, compute free, comm 1 s per chunk: the
        // single port can serve only one at a time, so 4 chunks take 4 s.
        let ws = [Processor::linear("a", 0.1, 0.0),
            Processor::linear("b", 0.1, 0.0)];
        let view: Vec<&Processor> = ws.iter().collect();
        let run = simulate_master_worker(&view, 40, &cfg(10, 0.0));
        assert_eq!(run.chunks, 4);
        assert!((run.makespan - 4.0).abs() < 1e-9, "makespan {}", run.makespan);
        assert!((run.master_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adapts_to_unknown_load() {
        // A load spike the static planner would not know about: the
        // dynamic scheme routes around it (the slow worker just requests
        // less often).
        let ws = [Processor::linear("a", 0.001, 1.0),
            Processor::linear("b", 0.001, 1.0)];
        let view: Vec<&Processor> = ws.iter().collect();
        let clean = simulate_master_worker(&view, 100, &cfg(5, 0.0));
        let spiked = simulate_master_worker(
            &view,
            100,
            &MasterWorkerConfig {
                chunk_size: 5,
                request_latency: 0.0,
                loads: vec![LoadTrace::new(vec![(0.0, 4.0)]), LoadTrace::none()],
            },
        );
        // The victim gets fewer items; the makespan grows far less than
        // the 4x a static half-half split would suffer.
        assert!(spiked.items[0] < spiked.items[1]);
        assert!(spiked.makespan < clean.makespan * 2.0);
    }
}
