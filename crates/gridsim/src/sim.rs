//! Discrete-event simulation of scatter + compute phases.

use std::cell::RefCell;
use std::rc::Rc;

use gs_scatter::cost::{Platform, Processor};
use gs_scatter::distribution::Timeline;
use gs_scatter::obs::span;
use gs_scatter::obs::{Event, EventKind, Trace, TraceSource};
use gs_scatter::planner::Plan;

use crate::engine::{Engine, SimEvent, SimEventKind};
use crate::load::LoadTrace;

/// Simulation parameters.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Background-load trace per processor, **in scatter order**. Empty
    /// means no background load anywhere.
    pub loads: Vec<LoadTrace>,
}

impl SimConfig {
    /// No background load.
    pub fn ideal() -> Self {
        SimConfig::default()
    }

    /// Background loads, one per processor in scatter order.
    pub fn with_loads(loads: Vec<LoadTrace>) -> Self {
        SimConfig { loads }
    }
}

/// Result of one simulated scatter + compute phase.
#[derive(Debug, Clone)]
pub struct ScatterSim {
    /// Per-processor schedule, in scatter order.
    pub timeline: Timeline,
    /// Full event trace, in time order.
    pub events: Vec<SimEvent>,
    /// Overall makespan.
    pub makespan: f64,
}

impl ScatterSim {
    /// Converts the engine's raw event stream into an observability
    /// [`Trace`] (source [`TraceSource::Simulated`]).
    ///
    /// `names` and `counts` are in scatter order (root last), matching
    /// the arguments the simulation ran with; `item_bytes` sizes one
    /// data item. The engine records *what happened when*; this adds the
    /// schema's metadata — transfer bytes, contiguous item ranges, the
    /// sending peer — and explicit idle markers for the stair waits and
    /// post-finish gaps.
    pub fn trace(&self, names: &[&str], counts: &[usize], item_bytes: u64) -> Trace {
        assert_eq!(names.len(), counts.len(), "one count per processor");
        assert_eq!(names.len(), self.timeline.finish.len(), "names must match the run");
        let p = names.len();
        let root = p.saturating_sub(1);
        let offsets: Vec<u64> = counts
            .iter()
            .scan(0u64, |acc, &c| {
                let lo = *acc;
                *acc += c as u64;
                Some(lo)
            })
            .collect();
        let mut trace = Trace::new(
            TraceSource::Simulated,
            item_bytes,
            names.iter().map(|s| s.to_string()).collect(),
        );
        for e in &self.events {
            let i = e.proc;
            let (lo, hi) = (offsets[i], offsets[i] + counts[i] as u64);
            trace.push(match e.kind {
                SimEventKind::SendStart => {
                    Event::send(EventKind::SendStart, e.time, i, root, counts[i] as u64 * item_bytes)
                        .with_items(lo, hi)
                }
                SimEventKind::SendEnd => {
                    Event::send(EventKind::SendEnd, e.time, i, root, counts[i] as u64 * item_bytes)
                        .with_items(lo, hi)
                }
                SimEventKind::ComputeStart => {
                    Event::compute(EventKind::ComputeStart, e.time, i).with_items(lo, hi)
                }
                SimEventKind::ComputeEnd => {
                    Event::compute(EventKind::ComputeEnd, e.time, i).with_items(lo, hi)
                }
            });
        }
        for i in 0..p {
            if self.timeline.comm_start[i] > 0.0 {
                trace.push(Event::idle(0.0, i));
            }
            if self.timeline.finish[i] < self.makespan {
                trace.push(Event::idle(self.timeline.finish[i], i));
            }
        }
        trace.sort_events();
        trace
    }
}

struct SimState {
    comm_time: Vec<f64>,
    work: Vec<f64>,
    loads: Vec<LoadTrace>,
    comm_start: Vec<f64>,
    comm_end: Vec<f64>,
    finish: Vec<f64>,
}

/// Simulates one scatter (root sends blocks in order, single-port) followed
/// by the compute phase, under optional background load.
///
/// ```
/// use gs_gridsim::sim::{simulate_scatter, SimConfig};
/// use gs_scatter::cost::Processor;
///
/// let procs = vec![
///     Processor::linear("w", 1.0, 2.0),
///     Processor::linear("root", 0.0, 1.0),
/// ];
/// let view: Vec<&Processor> = procs.iter().collect();
/// let sim = simulate_scatter(&view, &[3, 2], &SimConfig::ideal());
/// // w: 3 s receiving + 6 s computing.
/// assert_eq!(sim.timeline.finish[0], 9.0);
/// assert_eq!(sim.makespan, 9.0);
/// ```
///
/// `procs` and `counts` are in scatter order (root last), as produced by
/// [`gs_scatter::planner::Planner`]. Without background load the resulting
/// timeline equals [`gs_scatter::distribution::timeline`] exactly.
pub fn simulate_scatter(
    procs: &[&Processor],
    counts: &[usize],
    config: &SimConfig,
) -> ScatterSim {
    simulate_scatter_on(procs, counts, config, Engine::new())
}

/// [`simulate_scatter`] on a caller-supplied [`Engine`], so the queue
/// backend can be chosen explicitly: [`Engine::with_heap_pinned`] is the
/// seed engine's data path and serves as the `BENCH_sim.json` classic
/// baseline, [`Engine::with_calendar`] forces the calendar from the
/// start, and the backend-equivalence proptests drive all three through
/// this one entry point. The engine must be fresh (time zero, empty
/// queue); pop order — and therefore the result — is identical for
/// every backend.
pub fn simulate_scatter_on(
    procs: &[&Processor],
    counts: &[usize],
    config: &SimConfig,
    mut engine: Engine,
) -> ScatterSim {
    assert_eq!(procs.len(), counts.len(), "one count per processor");
    assert!(
        config.loads.is_empty() || config.loads.len() == procs.len(),
        "loads must be empty or match the processor count"
    );
    assert!(engine.now() == 0.0 && engine.pending() == 0, "engine must be fresh");
    let p = procs.len();
    let loads = if config.loads.is_empty() {
        vec![LoadTrace::none(); p]
    } else {
        config.loads.clone()
    };
    let state = Rc::new(RefCell::new(SimState {
        comm_time: procs.iter().zip(counts).map(|(pr, &c)| pr.comm.eval(c)).collect(),
        work: procs.iter().zip(counts).map(|(pr, &c)| pr.comp.eval(c)).collect(),
        loads,
        comm_start: vec![0.0; p],
        comm_end: vec![0.0; p],
        finish: vec![0.0; p],
    }));

    let mut scatter_span = span::span("sim", "sim.scatter");
    if p > 0 {
        schedule_send(&mut engine, state.clone(), 0, p);
    }
    let run_span = span::span("sim", "sim.run");
    let makespan = engine.run();
    drop(run_span);
    scatter_span.attr("p", p);
    scatter_span.attr("events", engine.trace.len());
    scatter_span.attr("makespan", makespan);
    drop(scatter_span);

    let st = state.borrow();
    let reg = gs_scatter::metrics::Registry::global();
    reg.counter("sim_runs_total", "discrete-event scatter simulations run").inc();
    reg.counter("sim_events_total", "simulator events processed")
        .add(engine.trace.len() as u64);
    let block = reg.histogram("sim_block_seconds", "simulated per-block transfer time");
    for (&start, &end) in st.comm_start.iter().zip(&st.comm_end) {
        block.observe(end - start);
    }
    ScatterSim {
        timeline: Timeline {
            comm_start: st.comm_start.clone(),
            comm_end: st.comm_end.clone(),
            finish: st.finish.clone(),
        },
        events: engine.trace,
        makespan,
    }
}

fn schedule_send(engine: &mut Engine, state: Rc<RefCell<SimState>>, i: usize, p: usize) {
    engine.record(SimEventKind::SendStart, i);
    let dt = {
        let mut st = state.borrow_mut();
        st.comm_start[i] = engine.now();
        st.comm_time[i]
    };
    let st2 = state.clone();
    engine.schedule_after(dt, move |e| {
        e.record(SimEventKind::SendEnd, i);
        e.record(SimEventKind::ComputeStart, i);
        let finish = {
            let mut st = st2.borrow_mut();
            st.comm_end[i] = e.now();
            st.loads[i].finish_time(e.now(), st.work[i])
        };
        let st3 = st2.clone();
        e.schedule_at(finish, move |e| {
            e.record(SimEventKind::ComputeEnd, i);
            st3.borrow_mut().finish[i] = e.now();
        });
        // The root's port is free: start the next transfer immediately.
        if i + 1 < p {
            schedule_send(e, st2.clone(), i + 1, p);
        }
    });
}

/// Simulates a [`Plan`] on its platform. `loads_by_index` (if non-empty)
/// gives one [`LoadTrace`] per processor **by platform index**; they are
/// re-arranged into the plan's scatter order internally.
pub fn simulate_plan(
    platform: &Platform,
    plan: &Plan,
    loads_by_index: &[LoadTrace],
) -> ScatterSim {
    let view = platform.ordered(&plan.order);
    let counts = plan.counts_in_order();
    let config = if loads_by_index.is_empty() {
        SimConfig::ideal()
    } else {
        assert_eq!(loads_by_index.len(), platform.len());
        SimConfig::with_loads(
            plan.order.iter().map(|&i| loads_by_index[i].clone()).collect(),
        )
    };
    simulate_scatter(&view, &counts, &config)
}

/// Simulates `rounds` consecutive scatter+compute phases (an SPMD loop that
/// re-scatters between iterations). Round `k+1` starts only when every
/// processor of round `k` has finished — the paper keeps the original
/// code's communication structure, with no overlap between phases.
/// Background loads persist across rounds (they are absolute-time traces).
pub fn simulate_multi_round(
    procs: &[&Processor],
    counts_per_round: &[Vec<usize>],
    config: &SimConfig,
) -> Vec<ScatterSim> {
    let mut out = Vec::with_capacity(counts_per_round.len());
    let mut offset = 0.0f64;
    for counts in counts_per_round {
        // Shift the load traces into the round's local time frame.
        let local = SimConfig {
            loads: config
                .loads
                .iter()
                .map(|t| shift_trace(t, offset))
                .collect(),
        };
        let mut sim = simulate_scatter(procs, counts, &local);
        // Re-express times absolutely.
        for v in sim
            .timeline
            .comm_start
            .iter_mut()
            .chain(sim.timeline.comm_end.iter_mut())
            .chain(sim.timeline.finish.iter_mut())
        {
            *v += offset;
        }
        for ev in &mut sim.events {
            ev.time += offset;
        }
        sim.makespan += offset;
        offset = sim.makespan;
        out.push(sim);
    }
    out
}

/// Re-bases a load trace so that absolute time `offset` becomes local 0.
fn shift_trace(trace: &LoadTrace, offset: f64) -> LoadTrace {
    if offset == 0.0 {
        return trace.clone();
    }
    // Sample the factor at the offset, then keep later segments shifted.
    let mut segments = vec![(0.0, trace.factor_at(offset))];
    // Conservatively re-sample boundaries after the offset.
    let mut t = offset;
    loop {
        // Find next boundary after t by probing the trace's own structure:
        // LoadTrace has no public segment accessor, so probe adaptively.
        let f = trace.factor_at(t);
        let mut step = 1.0;
        let mut next = None;
        // Exponential search out to a horizon, then binary refine.
        let horizon = 1e7;
        while t + step < offset + horizon {
            if trace.factor_at(t + step) != f {
                // Binary refine in (t, t+step].
                let (mut lo, mut hi) = (t, t + step);
                for _ in 0..80 {
                    let mid = 0.5 * (lo + hi);
                    if trace.factor_at(mid) != f {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                next = Some(hi);
                break;
            }
            step *= 2.0;
        }
        match next {
            Some(b) => {
                segments.push((b - offset, trace.factor_at(b)));
                t = b;
            }
            None => break,
        }
    }
    // Deduplicate equal consecutive factors and drop the leading identity.
    segments.dedup_by(|a, b| a.1 == b.1);
    if segments.len() == 1 && segments[0].1 == 1.0 {
        return LoadTrace::none();
    }
    LoadTrace::new(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scatter::distribution::timeline;
    use gs_scatter::ordering::OrderPolicy;
    use gs_scatter::planner::{Planner, Strategy};

    fn procs() -> Vec<Processor> {
        vec![
            Processor::linear("a", 1.0, 2.0),
            Processor::linear("b", 2.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ]
    }

    #[test]
    fn matches_analytic_timeline_exactly() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let sim = simulate_scatter(&view, &counts, &SimConfig::ideal());
        let analytic = timeline(&view, &counts);
        assert_eq!(sim.timeline, analytic);
        assert_eq!(sim.makespan, analytic.makespan());
    }

    #[test]
    fn event_trace_is_consistent() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let sim = simulate_scatter(&view, &[3, 2, 1], &SimConfig::ideal());
        // 4 events per processor.
        assert_eq!(sim.events.len(), 12);
        // Events are time-ordered.
        assert!(sim.events.windows(2).all(|w| w[0].time <= w[1].time));
        // SendStart of i+1 coincides with SendEnd of i (single port).
        for i in 0..2 {
            let end_i = sim
                .events
                .iter()
                .find(|e| e.kind == SimEventKind::SendEnd && e.proc == i)
                .unwrap()
                .time;
            let start_next = sim
                .events
                .iter()
                .find(|e| e.kind == SimEventKind::SendStart && e.proc == i + 1)
                .unwrap()
                .time;
            assert_eq!(end_i, start_next);
        }
    }

    #[test]
    fn load_spike_delays_victim_only() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        // Processor 0 computes during [3, 9]; slow it 2x over [3, 9].
        let loads = vec![
            LoadTrace::spike(3.0, 9.0, 2.0),
            LoadTrace::none(),
            LoadTrace::none(),
        ];
        let sim = simulate_scatter(&view, &counts, &SimConfig::with_loads(loads));
        let ideal = timeline(&view, &counts);
        // Victim: 6 s of work, first 6 wall-seconds yield 3 => 3 left at
        // full speed: finish 3 + 6 + 3 = 12 (was 9).
        assert_eq!(sim.timeline.finish[0], 12.0);
        assert_eq!(sim.timeline.finish[1], ideal.finish[1]);
        assert_eq!(sim.timeline.finish[2], ideal.finish[2]);
    }

    #[test]
    fn simulate_plan_reorders_loads_by_index() {
        let plat = Platform::new(procs(), 2).unwrap();
        let plan = Planner::new(plat.clone())
            .strategy(Strategy::Exact)
            .order_policy(OrderPolicy::DescendingBandwidth)
            .plan(60)
            .unwrap();
        // Slow down platform-index 0 ("a"), wherever it lands in the order.
        let mut loads = vec![LoadTrace::none(); 3];
        loads[0] = LoadTrace::new(vec![(0.0, 3.0)]);
        let perturbed = simulate_plan(&plat, &plan, &loads);
        let ideal = simulate_plan(&plat, &plan, &[]);
        let pos_a = plan.order.iter().position(|&i| i == 0).unwrap();
        assert!(perturbed.timeline.finish[pos_a] > ideal.timeline.finish[pos_a]);
        // Everyone else unchanged.
        for pos in 0..3 {
            if pos != pos_a {
                assert_eq!(perturbed.timeline.finish[pos], ideal.timeline.finish[pos]);
            }
        }
    }

    #[test]
    fn multi_round_rounds_are_sequential() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let rounds = vec![vec![3usize, 2, 1], vec![1, 1, 1]];
        let sims = simulate_multi_round(&view, &rounds, &SimConfig::ideal());
        assert_eq!(sims.len(), 2);
        let end0 = sims[0].makespan;
        // Round 1 starts exactly at round 0's makespan.
        assert_eq!(sims[1].timeline.comm_start[0], end0);
        assert!(sims[1].makespan > end0);
    }

    #[test]
    fn multi_round_load_trace_spans_rounds() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        // Constant 2x slowdown on proc 0 the whole time.
        let config = SimConfig::with_loads(vec![
            LoadTrace::new(vec![(0.0, 2.0)]),
            LoadTrace::none(),
            LoadTrace::none(),
        ]);
        let rounds = vec![vec![2usize, 0, 0], vec![2, 0, 0]];
        let sims = simulate_multi_round(&view, &rounds, &config);
        // Each round: comm 2 s + compute 2*4 = 8 s => 10 s per round.
        assert_eq!(sims[0].makespan, 10.0);
        assert_eq!(sims[1].makespan, 20.0);
    }

    #[test]
    fn obs_trace_matches_analytic_trace_when_unperturbed() {
        use gs_scatter::obs::{Trace, TraceSource};
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let names = ["a", "b", "root"];
        let sim = simulate_scatter(&view, &counts, &SimConfig::ideal());
        let simulated = sim.trace(&names, &counts, 8);
        simulated.validate().unwrap();
        // Without perturbation, the event-derived trace coincides with
        // the analytic Eq. (1) trace (modulo provenance).
        let analytic =
            Trace::from_timeline(TraceSource::Simulated, &names, &counts, 8, &timeline(&view, &counts));
        assert_eq!(simulated, analytic);
    }

    #[test]
    fn obs_trace_reflects_background_load() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let loads =
            vec![LoadTrace::spike(3.0, 9.0, 2.0), LoadTrace::none(), LoadTrace::none()];
        let sim = simulate_scatter(&view, &counts, &SimConfig::with_loads(loads));
        let trace = sim.trace(&["a", "b", "root"], &counts, 8);
        trace.validate().unwrap();
        let summary = trace.summarize().unwrap();
        assert_eq!(summary.makespan, 12.0); // victim slowed from 9 to 12
        // The victim's compute interval stretched to 9 s; others idle more.
        assert_eq!(summary.ranks[0].compute, 9.0);
        assert_eq!(summary.ranks[1].idle, 12.0 - 6.0);
    }

    #[test]
    fn empty_counts() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let sim = simulate_scatter(&view, &[0, 0, 0], &SimConfig::ideal());
        assert_eq!(sim.makespan, 0.0);
    }
}
