//! Background-load traces: piecewise-constant slowdown factors.
//!
//! §3 of the paper notes that the computed distribution can be based on
//! *instantaneous* grid characteristics queried from a monitoring daemon
//! (à la Network Weather Service) just before the scatter. To study that
//! scenario — and to reproduce artifacts like the "peak load on sekhmet
//! during the experiment" that §5.2 blames for Fig. 4's residual
//! imbalance — the simulator lets each processor carry a [`LoadTrace`]: a
//! piecewise-constant factor `>= 1` by which its compute time is stretched.

/// A piecewise-constant slowdown profile.
///
/// `factor(t)` multiplies the processor's *instantaneous* compute cost at
/// time `t`: a factor of 2.0 means the CPU progresses at half speed
/// (e.g. a competing background job). Factors must be `>= 1` is *not*
/// required — a factor below 1 models a machine that was benchmarked under
/// load and is now free — but they must be positive.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTrace {
    /// `(start_time, factor)` segments, sorted by start time. The factor
    /// before the first segment is 1.0; each segment lasts until the next.
    segments: Vec<(f64, f64)>,
}

impl LoadTrace {
    /// The identity trace (no background load).
    pub fn none() -> Self {
        LoadTrace { segments: Vec::new() }
    }

    /// Builds a trace from `(start_time, factor)` segments.
    ///
    /// # Panics
    /// Panics if segments are unsorted or a factor is not strictly
    /// positive and finite.
    pub fn new(segments: Vec<(f64, f64)>) -> Self {
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "segments must be strictly sorted by start time"
        );
        for &(t, f) in &segments {
            assert!(t >= 0.0, "segment start {t} must be >= 0");
            assert!(f.is_finite() && f > 0.0, "factor {f} must be positive");
        }
        LoadTrace { segments }
    }

    /// A single load spike: factor `f` during `[from, to)`.
    pub fn spike(from: f64, to: f64, factor: f64) -> Self {
        assert!(from < to, "empty spike");
        LoadTrace::new(vec![(from, factor), (to, 1.0)])
    }

    /// The slowdown factor at time `t`.
    pub fn factor_at(&self, t: f64) -> f64 {
        match self.segments.iter().rev().find(|&&(start, _)| start <= t) {
            Some(&(_, f)) => f,
            None => 1.0,
        }
    }

    /// Given `work` seconds of nominal compute starting at `start`,
    /// returns the wall-clock completion time under this trace.
    ///
    /// Progress accrues at rate `1/factor(t)`; the answer solves
    /// `∫_{start}^{end} dt / factor(t) = work` by walking the segments.
    pub fn finish_time(&self, start: f64, work: f64) -> f64 {
        assert!(work >= 0.0 && work.is_finite());
        if work == 0.0 {
            return start;
        }
        let mut t = start;
        let mut remaining = work;
        loop {
            let factor = self.factor_at(t);
            // Next boundary strictly after t, if any.
            let next = self
                .segments
                .iter()
                .map(|&(s, _)| s)
                .find(|&s| s > t);
            match next {
                Some(boundary) => {
                    let span = boundary - t;
                    let progress = span / factor;
                    if progress >= remaining {
                        return t + remaining * factor;
                    }
                    remaining -= progress;
                    t = boundary;
                }
                None => return t + remaining * factor,
            }
        }
    }
}

impl Default for LoadTrace {
    fn default() -> Self {
        LoadTrace::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_trace() {
        let t = LoadTrace::none();
        assert_eq!(t.factor_at(0.0), 1.0);
        assert_eq!(t.factor_at(1e9), 1.0);
        assert_eq!(t.finish_time(5.0, 10.0), 15.0);
        assert_eq!(t.finish_time(5.0, 0.0), 5.0);
    }

    #[test]
    fn factor_lookup() {
        let t = LoadTrace::new(vec![(10.0, 2.0), (20.0, 4.0), (30.0, 1.0)]);
        assert_eq!(t.factor_at(0.0), 1.0);
        assert_eq!(t.factor_at(10.0), 2.0);
        assert_eq!(t.factor_at(19.9), 2.0);
        assert_eq!(t.factor_at(20.0), 4.0);
        assert_eq!(t.factor_at(31.0), 1.0);
    }

    #[test]
    fn finish_time_within_one_segment() {
        let t = LoadTrace::spike(0.0, 100.0, 2.0);
        // 10 s of work at half speed takes 20 s.
        assert_eq!(t.finish_time(0.0, 10.0), 20.0);
    }

    #[test]
    fn finish_time_across_boundary() {
        let t = LoadTrace::spike(0.0, 10.0, 2.0);
        // First 10 wall-seconds yield 5 work-seconds; the remaining 5 work
        // at full speed: finish at 15.
        assert_eq!(t.finish_time(0.0, 10.0), 15.0);
    }

    #[test]
    fn finish_time_spike_in_middle() {
        let t = LoadTrace::spike(10.0, 20.0, 3.0);
        // Start at 5 with 10 s of work: 5 s free (work 5 by t=10); during
        // the spike [10, 20) only 10/3 work accrues; the remaining
        // 5 - 10/3 = 5/3 finishes at full speed => 20 + 5/3.
        let expect = 20.0 + 5.0 / 3.0;
        assert!((t.finish_time(5.0, 10.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn speedup_factor_below_one() {
        let t = LoadTrace::new(vec![(0.0, 0.5)]);
        assert_eq!(t.finish_time(0.0, 10.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted() {
        let _ = LoadTrace::new(vec![(10.0, 2.0), (5.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_factor() {
        let _ = LoadTrace::new(vec![(0.0, 0.0)]);
    }
}
