//! Multi-installment scatter: a divisible-load-theory extension.
//!
//! The paper sends each processor its whole share in one block, so `P_i`
//! idles until its block fully arrives (the stair of Fig. 1). Divisible
//! load theory (§6 cites [6, 20]) suggests *installments*: split each
//! share into `k` pieces and interleave the sends, so every processor
//! starts computing after receiving only `1/k` of its data. The optimum
//! `k` is finite: with round-major interleaving each processor's *last*
//! installment arrives later as `k` grows, so very fine installments
//! degrade again.
//!
//! This module simulates that schedule (single-port root, round-major
//! send order) so the trade-off can be measured: on platforms where
//! communication is a visible fraction of the makespan, installments
//! shave most of the stair; on Table 1 (comm ≪ comp) they buy almost
//! nothing — evidence for the paper's choice to keep the simple
//! one-round scatter.

use gs_scatter::cost::Processor;

/// Result of a multi-installment simulation.
#[derive(Debug, Clone)]
pub struct InstallmentRun {
    /// Per-processor compute-finish times (scatter order).
    pub finish: Vec<f64>,
    /// Overall makespan.
    pub makespan: f64,
    /// When each processor received its *first* installment (compute can
    /// start here — compare with the one-round `comm_end`).
    pub first_arrival: Vec<f64>,
}

impl InstallmentRun {
    /// Largest finish time.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }
}

/// Splits one-round counts into `k` installment rounds (round-major),
/// spreading each share as evenly as possible (earlier rounds get the
/// remainder so compute starts sooner).
pub fn split_installments(counts: &[usize], k: usize) -> Vec<Vec<usize>> {
    assert!(k >= 1);
    (0..k)
        .map(|round| {
            counts
                .iter()
                .map(|&c| {
                    let base = c / k;
                    let rem = c % k;
                    base + usize::from(round < rem)
                })
                .collect()
        })
        .collect()
}

/// Simulates a multi-installment scatter: the root sends `rounds[0]` to
/// `P_1..P_p` in order, then `rounds[1]`, etc.
///
/// ```
/// use gs_gridsim::installments::{simulate_installments, split_installments};
/// use gs_scatter::cost::Processor;
///
/// let ps = vec![Processor::linear("w", 1.0, 1.0), Processor::linear("root", 0.0, 1.0)];
/// let view: Vec<&Processor> = ps.iter().collect();
/// let one = simulate_installments(&view, &split_installments(&[8, 8], 1));
/// let four = simulate_installments(&view, &split_installments(&[8, 8], 4));
/// // Installments start the root's compute earlier, never later.
/// assert!(four.makespan <= one.makespan);
/// ```
/// (single port; empty
/// installments are skipped and cost nothing). Each processor computes
/// greedily on whatever has arrived, charging the *marginal* compute cost
/// `Tcomp(total_so_far) − Tcomp(previous_total)` per installment, which
/// reduces to the usual per-item cost for linear functions and stays
/// consistent for non-linear ones.
pub fn simulate_installments(procs: &[&Processor], rounds: &[Vec<usize>]) -> InstallmentRun {
    let p = procs.len();
    for r in rounds {
        assert_eq!(r.len(), p, "every round covers every processor");
    }
    let mut port = 0.0f64; // root's outgoing-port availability
    let mut cum_items = vec![0usize; p];
    let mut compute_free = vec![0.0f64; p]; // when each CPU finishes queued work
    let mut first_arrival = vec![f64::INFINITY; p];
    let mut received_any = vec![false; p];

    for round in rounds {
        for i in 0..p {
            let c = round[i];
            if c == 0 {
                continue;
            }
            // Transfer: marginal comm cost of c more items.
            let before = procs[i].comm.eval(cum_items[i]);
            let after = procs[i].comm.eval(cum_items[i] + c);
            port += (after - before).max(0.0);
            let arrival = port;
            if !received_any[i] {
                first_arrival[i] = arrival;
                received_any[i] = true;
            }
            // Compute: marginal cost of c more items, starting when both
            // the data is here and the CPU is free.
            let w_before = procs[i].comp.eval(cum_items[i]);
            let w_after = procs[i].comp.eval(cum_items[i] + c);
            let start = compute_free[i].max(arrival);
            compute_free[i] = start + (w_after - w_before).max(0.0);
            cum_items[i] += c;
        }
    }

    for i in 0..p {
        if !received_any[i] {
            first_arrival[i] = 0.0;
        }
    }
    let makespan = compute_free.iter().copied().fold(0.0, f64::max);
    InstallmentRun { finish: compute_free, makespan, first_arrival }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scatter::distribution::timeline;

    fn procs() -> Vec<Processor> {
        vec![
            Processor::linear("a", 1.0, 2.0),
            Processor::linear("b", 2.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ]
    }

    #[test]
    fn split_preserves_counts() {
        let rounds = split_installments(&[10, 7, 0], 3);
        assert_eq!(rounds.len(), 3);
        for i in 0..3 {
            let total: usize = rounds.iter().map(|r| r[i]).sum();
            assert_eq!(total, [10, 7, 0][i]);
        }
        // Earlier rounds carry the remainder.
        assert_eq!(rounds[0][1], 3);
        assert_eq!(rounds[2][1], 2);
    }

    #[test]
    fn one_installment_equals_one_round_model() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let run = simulate_installments(&view, &split_installments(&counts, 1));
        let tl = timeline(&view, &counts);
        for (a, b) in run.finish.iter().zip(&tl.finish) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert_eq!(run.makespan, tl.makespan());
    }

    #[test]
    fn installments_start_compute_earlier() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![8usize, 8, 0];
        let one = simulate_installments(&view, &split_installments(&counts, 1));
        let four = simulate_installments(&view, &split_installments(&counts, 4));
        // P2's first data arrives much earlier with installments.
        assert!(four.first_arrival[1] < one.first_arrival[1]);
    }

    #[test]
    fn moderate_installments_improve_then_degrade() {
        // The classical divisible-load result: a few installments shave
        // the stair, but with round-major interleaving each processor's
        // LAST piece arrives ever later as k grows, so the optimum k is
        // finite — makespan is not monotone in k.
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![20usize, 12, 8];
        let at = |k: usize| {
            simulate_installments(&view, &split_installments(&counts, k)).makespan
        };
        let one = at(1);
        let best_multi = [2usize, 4, 8].iter().map(|&k| at(k)).fold(f64::INFINITY, f64::min);
        assert!(best_multi < one, "some k > 1 must beat one round: {best_multi} vs {one}");
        // And overly fine installments are worse than the best choice.
        assert!(at(16) > best_multi);
    }

    #[test]
    fn empty_installments_cost_nothing() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        // k far larger than the share: most installments are empty.
        let run = simulate_installments(&view, &split_installments(&[2, 1, 0], 10));
        assert_eq!(run.finish.len(), 3);
        assert!(run.makespan.is_finite());
        let direct = simulate_installments(&view, &split_installments(&[2, 1, 0], 1));
        // With such tiny shares the schedules coincide.
        assert!(run.makespan <= direct.makespan + 1e-9);
    }

    #[test]
    fn marginal_costs_respect_non_linear_comp() {
        // Quadratic-ish compute: total work must not depend on k.
        let ps = [Processor::custom("quad", |x| 0.1 * x as f64, |x| (x * x) as f64 * 0.01),
            Processor::linear("root", 0.0, 1.0)];
        let view: Vec<&Processor> = ps.iter().collect();
        let one = simulate_installments(&view, &split_installments(&[10, 0], 1));
        let five = simulate_installments(&view, &split_installments(&[10, 0], 5));
        // Same total compute (1.0 s) regardless of installment count; only
        // the arrival pattern differs.
        let total_work = 0.01 * 100.0;
        assert!(one.finish[0] >= total_work);
        assert!(five.finish[0] >= total_work);
        assert!(five.finish[0] <= one.finish[0] + 1e-9);
    }
}
