//! A minimal discrete-event engine: a time-ordered queue of closures.
//!
//! Kept deliberately small — the scatter model needs only a handful of
//! event kinds — but genuinely event-driven so extensions (multi-port
//! roots, overlapping rounds, failures) slot in without restructuring.
//!
//! Two queue backends share one pop order (strictly ascending
//! `(time, seq)`, see `docs/simulation.md`):
//!
//! * a **binary heap** for tiny horizons — lowest constant factors when
//!   only a few events are ever pending;
//! * a **[calendar queue](crate::calendar)** for big horizons — amortised
//!   O(1) per event, which is what lets [`crate::bigsim`] push past 10⁶
//!   ranks.
//!
//! An engine starts on the heap and migrates to the calendar
//! automatically once the pending count crosses
//! [`Engine::MIGRATE_THRESHOLD`]; [`Engine::with_calendar`] forces the
//! calendar from the start (the equivalence proptests use both).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::CalendarQueue;

/// What happened, for traces and Gantt rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEventKind {
    /// Root starts sending to a processor.
    SendStart,
    /// A processor finished receiving its block.
    SendEnd,
    /// A processor starts computing.
    ComputeStart,
    /// A processor finished computing.
    ComputeEnd,
}

/// A timestamped event concerning one processor (by scatter-order
/// position).
#[derive(Debug, Clone, PartialEq)]
pub struct SimEvent {
    /// Simulation time, seconds.
    pub time: f64,
    /// Event kind.
    pub kind: SimEventKind,
    /// Scatter-order position of the processor concerned.
    pub proc: usize,
}

type Action = Box<dyn FnOnce(&mut Engine)>;

/// An entry in the pending-event heap.
struct Pending {
    time: f64,
    seq: u64,
    action: Action,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time pops first;
        // ties break by insertion order (deterministic).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The pending-event queue: heap for tiny horizons, calendar beyond.
enum Queue {
    Heap(BinaryHeap<Pending>),
    Calendar(CalendarQueue<Action>),
}

impl Queue {
    fn len(&self) -> usize {
        match self {
            Queue::Heap(h) => h.len(),
            Queue::Calendar(c) => c.len(),
        }
    }
}

/// The event engine: a virtual clock plus a queue of scheduled actions.
pub struct Engine {
    queue: Queue,
    /// `true` disables heap→calendar migration (baseline measurements).
    pinned: bool,
    seq: u64,
    now: f64,
    peak: usize,
    /// Recorded trace, in execution order.
    pub trace: Vec<SimEvent>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Pending-event count beyond which a heap engine migrates to the
    /// calendar queue.
    pub const MIGRATE_THRESHOLD: usize = 1024;

    /// A fresh engine at time zero (binary-heap backend until the
    /// pending count crosses [`Engine::MIGRATE_THRESHOLD`]).
    pub fn new() -> Self {
        Engine {
            queue: Queue::Heap(BinaryHeap::new()),
            pinned: false,
            seq: 0,
            now: 0.0,
            peak: 0,
            trace: Vec::new(),
        }
    }

    /// A fresh engine forced onto the calendar-queue backend (no heap
    /// phase, no migration). Pop order is identical to [`Engine::new`] —
    /// `tests/proptest_simscale.rs` holds the two to that contract.
    pub fn with_calendar() -> Self {
        Engine { queue: Queue::Calendar(CalendarQueue::new()), ..Engine::new() }
    }

    /// A fresh engine pinned to the binary-heap backend: never migrates,
    /// whatever the pending count. This is the seed engine's exact data
    /// path (boxed actions in a `BinaryHeap`), kept constructible so the
    /// `BENCH_sim.json` baseline and the backend-equivalence proptests
    /// can measure and test it at any depth.
    pub fn with_heap_pinned() -> Self {
        Engine { pinned: true, ..Engine::new() }
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending (not yet executed) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// `true` iff the engine is currently on the calendar backend.
    pub fn is_calendar(&self) -> bool {
        matches!(self.queue, Queue::Calendar(_))
    }

    /// Schedules `action` to run at absolute time `at` (must not be in the
    /// past).
    pub fn schedule_at(&mut self, at: f64, action: impl FnOnce(&mut Engine) + 'static) {
        assert!(at >= self.now, "cannot schedule in the past ({at} < {})", self.now);
        assert!(at.is_finite(), "event time must be finite");
        self.seq += 1;
        match &mut self.queue {
            Queue::Heap(h) => {
                h.push(Pending { time: at, seq: self.seq, action: Box::new(action) });
                if !self.pinned && h.len() > Self::MIGRATE_THRESHOLD {
                    self.migrate_to_calendar();
                }
            }
            Queue::Calendar(c) => c.push(at, self.seq, Box::new(action)),
        }
        self.peak = self.peak.max(self.queue.len());
    }

    /// Schedules `action` after a non-negative delay.
    pub fn schedule_after(&mut self, delay: f64, action: impl FnOnce(&mut Engine) + 'static) {
        assert!(delay >= 0.0, "negative delay {delay}");
        let at = self.now + delay;
        self.schedule_at(at, action);
    }

    /// Records a trace event at the current time.
    pub fn record(&mut self, kind: SimEventKind, proc: usize) {
        self.trace.push(SimEvent { time: self.now, kind, proc });
    }

    /// Moves every pending event from the heap onto a calendar queue.
    /// `(time, seq)` rides along, so pop order is unchanged.
    fn migrate_to_calendar(&mut self) {
        if let Queue::Heap(h) = &mut self.queue {
            let mut mig_span = gs_scatter::obs::span::span("sim", "sim.migrate");
            mig_span.attr("pending", h.len());
            let mut cal = CalendarQueue::new();
            for p in std::mem::take(h).into_vec() {
                cal.push(p.time, p.seq, p.action);
            }
            self.queue = Queue::Calendar(cal);
            gs_scatter::metrics::Registry::global()
                .counter(
                    "sim_queue_migrations_total",
                    "engine migrations from binary heap to calendar queue",
                )
                .inc();
        }
    }

    fn pop(&mut self) -> Option<(f64, Action)> {
        match &mut self.queue {
            Queue::Heap(h) => h.pop().map(|p| (p.time, p.action)),
            Queue::Calendar(c) => c.pop().map(|(t, _, a)| (t, a)),
        }
    }

    /// Runs until the queue drains; returns the final time.
    pub fn run(&mut self) -> f64 {
        while let Some((time, action)) = self.pop() {
            debug_assert!(time >= self.now, "time must be monotone");
            self.now = time;
            action(self);
        }
        let reg = gs_scatter::metrics::Registry::global();
        reg.gauge("sim_queue_depth", "peak pending events in the last simulator run")
            .set(self.peak as f64);
        if let Queue::Calendar(c) = &self.queue {
            reg.counter("sim_queue_resizes_total", "calendar-queue bucket-array rebuilds")
                .add(c.stats().resizes);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(3.0, 'c'), (1.0, 'a'), (2.0, 'b')] {
            let log = log.clone();
            e.schedule_at(t, move |_| log.borrow_mut().push(tag));
        }
        assert_eq!(e.run(), 3.0);
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for mut e in [Engine::new(), Engine::with_calendar()] {
            let log = Rc::new(RefCell::new(Vec::new()));
            for tag in ['x', 'y', 'z'] {
                let log = log.clone();
                e.schedule_at(5.0, move |_| log.borrow_mut().push(tag));
            }
            e.run();
            assert_eq!(*log.borrow(), vec!['x', 'y', 'z']);
        }
    }

    #[test]
    fn cascading_events() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        e.schedule_at(1.0, move |e| {
            log2.borrow_mut().push(e.now());
            let log3 = log2.clone();
            e.schedule_after(2.5, move |e| log3.borrow_mut().push(e.now()));
        });
        assert_eq!(e.run(), 3.5);
        assert_eq!(*log.borrow(), vec![1.0, 3.5]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn rejects_past_events() {
        let mut e = Engine::new();
        e.schedule_at(5.0, |e| e.schedule_at(1.0, |_| {}));
        e.run();
    }

    #[test]
    fn trace_recording() {
        let mut e = Engine::new();
        e.schedule_at(2.0, |e| e.record(SimEventKind::SendStart, 7));
        e.run();
        assert_eq!(
            e.trace,
            vec![SimEvent { time: 2.0, kind: SimEventKind::SendStart, proc: 7 }]
        );
    }

    #[test]
    fn calendar_engine_matches_heap_engine() {
        // Same schedule on both backends → same execution order.
        let schedule = |e: &mut Engine, log: Rc<RefCell<Vec<(f64, u32)>>>| {
            for i in 0..50u32 {
                let t = (i % 7) as f64;
                let log = log.clone();
                e.schedule_at(t, move |e| log.borrow_mut().push((e.now(), i)));
            }
        };
        let (heap_log, cal_log) =
            (Rc::new(RefCell::new(Vec::new())), Rc::new(RefCell::new(Vec::new())));
        let mut heap = Engine::new();
        schedule(&mut heap, heap_log.clone());
        heap.run();
        let mut cal = Engine::with_calendar();
        assert!(cal.is_calendar());
        schedule(&mut cal, cal_log.clone());
        cal.run();
        assert_eq!(*heap_log.borrow(), *cal_log.borrow());
    }

    #[test]
    fn heap_engine_migrates_past_threshold() {
        let mut e = Engine::new();
        assert!(!e.is_calendar());
        let hits = Rc::new(RefCell::new(0usize));
        for i in 0..=Engine::MIGRATE_THRESHOLD {
            let hits = hits.clone();
            e.schedule_at(i as f64, move |_| *hits.borrow_mut() += 1);
        }
        assert!(e.is_calendar(), "crossing the threshold must migrate");
        assert_eq!(e.pending(), Engine::MIGRATE_THRESHOLD + 1);
        e.run();
        assert_eq!(*hits.borrow(), Engine::MIGRATE_THRESHOLD + 1);
    }
}
