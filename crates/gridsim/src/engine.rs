//! A minimal discrete-event engine: a time-ordered queue of closures.
//!
//! Kept deliberately small — the scatter model needs only a handful of
//! event kinds — but genuinely event-driven so extensions (multi-port
//! roots, overlapping rounds, failures) slot in without restructuring.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened, for traces and Gantt rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEventKind {
    /// Root starts sending to a processor.
    SendStart,
    /// A processor finished receiving its block.
    SendEnd,
    /// A processor starts computing.
    ComputeStart,
    /// A processor finished computing.
    ComputeEnd,
}

/// A timestamped event concerning one processor (by scatter-order
/// position).
#[derive(Debug, Clone, PartialEq)]
pub struct SimEvent {
    /// Simulation time, seconds.
    pub time: f64,
    /// Event kind.
    pub kind: SimEventKind,
    /// Scatter-order position of the processor concerned.
    pub proc: usize,
}

/// An entry in the pending-event queue.
struct Pending {
    time: f64,
    seq: u64,
    action: Box<dyn FnOnce(&mut Engine)>,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time pops first;
        // ties break by insertion order (deterministic).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event engine: a virtual clock plus a queue of scheduled actions.
#[derive(Default)]
pub struct Engine {
    queue: BinaryHeap<Pending>,
    seq: u64,
    now: f64,
    /// Recorded trace, in execution order.
    pub trace: Vec<SimEvent>,
}

impl Engine {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `action` to run at absolute time `at` (must not be in the
    /// past).
    pub fn schedule_at(&mut self, at: f64, action: impl FnOnce(&mut Engine) + 'static) {
        assert!(at >= self.now, "cannot schedule in the past ({at} < {})", self.now);
        assert!(at.is_finite(), "event time must be finite");
        self.seq += 1;
        self.queue.push(Pending { time: at, seq: self.seq, action: Box::new(action) });
    }

    /// Schedules `action` after a non-negative delay.
    pub fn schedule_after(&mut self, delay: f64, action: impl FnOnce(&mut Engine) + 'static) {
        assert!(delay >= 0.0, "negative delay {delay}");
        let at = self.now + delay;
        self.schedule_at(at, action);
    }

    /// Records a trace event at the current time.
    pub fn record(&mut self, kind: SimEventKind, proc: usize) {
        self.trace.push(SimEvent { time: self.now, kind, proc });
    }

    /// Runs until the queue drains; returns the final time.
    pub fn run(&mut self) -> f64 {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.time >= self.now, "time must be monotone");
            self.now = ev.time;
            (ev.action)(self);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(3.0, 'c'), (1.0, 'a'), (2.0, 'b')] {
            let log = log.clone();
            e.schedule_at(t, move |_| log.borrow_mut().push(tag));
        }
        assert_eq!(e.run(), 3.0);
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in ['x', 'y', 'z'] {
            let log = log.clone();
            e.schedule_at(5.0, move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), vec!['x', 'y', 'z']);
    }

    #[test]
    fn cascading_events() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        e.schedule_at(1.0, move |e| {
            log2.borrow_mut().push(e.now());
            let log3 = log2.clone();
            e.schedule_after(2.5, move |e| log3.borrow_mut().push(e.now()));
        });
        assert_eq!(e.run(), 3.5);
        assert_eq!(*log.borrow(), vec![1.0, 3.5]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn rejects_past_events() {
        let mut e = Engine::new();
        e.schedule_at(5.0, |e| e.schedule_at(1.0, |_| {}));
        e.run();
    }

    #[test]
    fn trace_recording() {
        let mut e = Engine::new();
        e.schedule_at(2.0, |e| e.record(SimEventKind::SendStart, 7));
        e.run();
        assert_eq!(
            e.trace,
            vec![SimEvent { time: 2.0, kind: SimEventKind::SendStart, proc: 7 }]
        );
    }
}
