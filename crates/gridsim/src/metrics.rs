//! Summary metrics for a simulated (or analytic) run.

use gs_scatter::distribution::Timeline;
use gs_scatter::obs::Trace;

/// Aggregate metrics of one scatter + compute phase.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Overall makespan (Eq. 2).
    pub makespan: f64,
    /// Earliest finish time.
    pub min_finish: f64,
    /// `(makespan − min_finish) / makespan` — the §5.2 balance metric.
    pub imbalance: f64,
    /// Sum over processors of the time spent waiting before their data
    /// starts flowing — the area of the "stair" of Fig. 1.
    pub stair_area: f64,
    /// Sum over processors of `makespan − finish_i` (post-compute idling).
    pub tail_idle: f64,
    /// Total seconds of useful computation.
    pub compute_area: f64,
    /// Total seconds the root's port spent transmitting.
    pub comm_total: f64,
}

impl RunMetrics {
    /// Computes metrics from a timeline (in scatter order).
    pub fn from_timeline(tl: &Timeline) -> Self {
        let makespan = tl.makespan();
        let min_finish = tl.min_finish();
        let stair_area: f64 = tl.comm_start.iter().sum();
        let tail_idle: f64 = tl.finish.iter().map(|f| makespan - f).sum();
        let compute_area: f64 = tl
            .finish
            .iter()
            .zip(&tl.comm_end)
            .map(|(f, c)| f - c)
            .sum();
        let comm_total: f64 = tl
            .comm_end
            .iter()
            .zip(&tl.comm_start)
            .map(|(e, s)| e - s)
            .sum();
        RunMetrics {
            makespan,
            min_finish,
            imbalance: if makespan == 0.0 { 0.0 } else { (makespan - min_finish) / makespan },
            stair_area,
            tail_idle,
            compute_area,
            comm_total,
        }
    }

    /// Speedup of this run relative to a baseline makespan.
    pub fn speedup_over(&self, baseline_makespan: f64) -> f64 {
        baseline_makespan / self.makespan
    }

    /// Computes metrics from an observability [`Trace`] (any source),
    /// via its per-rank timeline view — so predicted, simulated and
    /// executed runs all reduce to the same numbers.
    pub fn from_trace(trace: &Trace) -> Self {
        RunMetrics::from_timeline(&trace.to_timeline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> Timeline {
        Timeline {
            comm_start: vec![0.0, 2.0, 5.0],
            comm_end: vec![2.0, 5.0, 5.0],
            finish: vec![8.0, 9.0, 10.0],
        }
    }

    #[test]
    fn metrics_hand_checked() {
        let m = RunMetrics::from_timeline(&tl());
        assert_eq!(m.makespan, 10.0);
        assert_eq!(m.min_finish, 8.0);
        assert!((m.imbalance - 0.2).abs() < 1e-12);
        assert_eq!(m.stair_area, 7.0); // 0 + 2 + 5
        assert_eq!(m.tail_idle, 3.0); // 2 + 1 + 0
        assert_eq!(m.compute_area, 6.0 + 4.0 + 5.0);
        assert_eq!(m.comm_total, 5.0); // 2 + 3 + 0
    }

    #[test]
    fn speedup() {
        let m = RunMetrics::from_timeline(&tl());
        assert_eq!(m.speedup_over(20.0), 2.0);
    }

    #[test]
    fn from_trace_matches_from_timeline() {
        use gs_scatter::obs::{Trace, TraceSource};
        let tl = tl();
        let trace =
            Trace::from_timeline(TraceSource::Simulated, &["a", "b", "c"], &[2, 3, 0], 1, &tl);
        assert_eq!(RunMetrics::from_trace(&trace), RunMetrics::from_timeline(&tl));
    }

    #[test]
    fn zero_makespan_has_zero_imbalance() {
        let m = RunMetrics::from_timeline(&Timeline {
            comm_start: vec![0.0],
            comm_end: vec![0.0],
            finish: vec![0.0],
        });
        assert_eq!(m.imbalance, 0.0);
    }
}
