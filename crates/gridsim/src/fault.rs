//! Fault-tolerant scatter simulation: failure injection, detection by
//! timeout, bounded retry, and re-planning of undelivered items over the
//! survivors.
//!
//! Two modes, selected by the `recovery` argument of
//! [`simulate_scatter_ft`]:
//!
//! * **degraded** (`None`) — the fault-oblivious baseline: the root
//!   pushes every block exactly once and never learns about losses;
//!   lost blocks are simply never computed. This is what a stock
//!   `MPI_Scatterv` does on a faulty grid.
//! * **recovered** (`Some(config)`) — the robust protocol of
//!   `docs/robustness.md`: per-send timeouts derived from Eq. (1)'s
//!   predicted `Tcomm`, bounded retry with exponential backoff, and on
//!   permanent failure a **re-plan**: the undelivered items are
//!   redistributed optimally over the surviving ranks via the existing
//!   planner, preserving byte conservation.
//!
//! Both modes drive the same [`FaultSession`] oracle the minimpi
//! runtime uses, so simulated and executed fault traces agree exactly.

use gs_scatter::cost::{Platform, Processor};
use gs_scatter::distribution::Timeline;
use gs_scatter::error::PlanError;
use gs_scatter::fault::{
    outcome_incidents, replan_residual_with, take_items, FaultPlan, FaultSession, RecoveryConfig,
};
use gs_scatter::obs::{Event, EventKind, Incident, IncidentKind, Trace, TraceSource};
use gs_scatter::planner::Plan;

/// One successful block delivery (there may be several per rank once
/// re-planning kicks in).
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Receiving rank (scatter position; the root's kept share shows up
    /// as a delivery to the last rank).
    pub rank: usize,
    /// Transfer start time.
    pub start: f64,
    /// Transfer end time.
    pub end: f64,
    /// Half-open item ranges delivered (more than one after a re-plan
    /// hands a rank a non-contiguous residual slice).
    pub ranges: Vec<(u64, u64)>,
}

/// One re-planning round.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanRecord {
    /// When the root re-planned (its port-free time).
    pub t: f64,
    /// Residual items being redistributed.
    pub items: u64,
    /// Scatter positions of the survivors, relative order preserved,
    /// root last.
    pub survivors: Vec<usize>,
    /// Items assigned to each survivor, aligned with `survivors`.
    pub counts: Vec<u64>,
}

/// Result of one fault-injected scatter + compute phase.
#[derive(Debug, Clone)]
pub struct FtScatterSim {
    /// Per-rank schedule summary (first transfer start, last transfer
    /// end, compute finish), in scatter order. Ranks that never
    /// received anything have all-zero rows.
    pub timeline: Timeline,
    /// Overall makespan (last compute finish or port release).
    pub makespan: f64,
    /// Every successful delivery, in time order.
    pub deliveries: Vec<Delivery>,
    /// Item ranges each rank ended up computing, in scatter order.
    pub assignments: Vec<Vec<(u64, u64)>>,
    /// Total items computed (equals the input `n` in recovered mode
    /// whenever at least the root survives).
    pub computed_items: u64,
    /// Items lost for good (degraded mode only; always 0 in recovered
    /// mode).
    pub lost_items: u64,
    /// Which ranks were declared dead.
    pub dead: Vec<bool>,
    /// Every re-planning round, in time order (empty in degraded mode).
    pub replans: Vec<ReplanRecord>,
    /// Fault/retry/replan incidents, in time order.
    pub incidents: Vec<Incident>,
    /// `true` iff the run used a [`RecoveryConfig`] (labels the trace
    /// `recovered` rather than `degraded`).
    pub recovered: bool,
}

impl FtScatterSim {
    /// Converts the run into an observability [`Trace`] (source
    /// [`TraceSource::Simulated`], label `"recovered"` or
    /// `"degraded"`), incidents included. `names` are in scatter order.
    ///
    /// Failed attempts are *not* events — the port time they burn shows
    /// up as idle, and the attempts themselves as `fault`/`retry`
    /// incidents — so byte conservation over events keeps holding.
    /// Item ranges are attached only to contiguous transfers.
    pub fn trace(&self, names: &[&str], item_bytes: u64) -> Trace {
        assert_eq!(names.len(), self.timeline.finish.len(), "names must match the run");
        let p = names.len();
        let root = p.saturating_sub(1);
        let mut trace = Trace::new(
            TraceSource::Simulated,
            item_bytes,
            names.iter().map(|s| s.to_string()).collect(),
        );
        trace.label = Some(if self.recovered { "recovered" } else { "degraded" }.to_string());
        trace.incidents = self.incidents.clone();
        let mut first_busy = vec![f64::INFINITY; p];
        let mut last_busy = vec![0.0f64; p];
        for d in &self.deliveries {
            let items: u64 = d.ranges.iter().map(|&(lo, hi)| hi - lo).sum();
            let bytes = items * item_bytes;
            let mut start = Event::send(EventKind::SendStart, d.start, d.rank, root, bytes);
            let mut end = Event::send(EventKind::SendEnd, d.end, d.rank, root, bytes);
            if let [(lo, hi)] = d.ranges[..] {
                start = start.with_items(lo, hi);
                end = end.with_items(lo, hi);
            }
            trace.push(start);
            trace.push(end);
            first_busy[d.rank] = first_busy[d.rank].min(d.start);
            last_busy[d.rank] = last_busy[d.rank].max(d.end);
            if d.rank != root {
                first_busy[root] = first_busy[root].min(d.start);
                last_busy[root] = last_busy[root].max(d.end);
            }
        }
        for rank in 0..p {
            if self.assignments[rank].is_empty() {
                continue;
            }
            let (start, end) = (self.timeline.comm_end[rank], self.timeline.finish[rank]);
            let mut cs = Event::compute(EventKind::ComputeStart, start, rank);
            let mut ce = Event::compute(EventKind::ComputeEnd, end, rank);
            if let [(lo, hi)] = self.assignments[rank][..] {
                cs = cs.with_items(lo, hi);
                ce = ce.with_items(lo, hi);
            }
            trace.push(cs);
            trace.push(ce);
            first_busy[rank] = first_busy[rank].min(start);
            last_busy[rank] = last_busy[rank].max(end);
        }
        for rank in 0..p {
            if first_busy[rank] > 0.0 {
                trace.push(Event::idle(0.0, rank));
            }
            if last_busy[rank] < self.makespan {
                trace.push(Event::idle(last_busy[rank], rank));
            }
        }
        trace.sort_events();
        trace
    }
}

/// Simulates a fault-injected scatter + compute phase.
///
/// `procs` and `counts` are in scatter order (root last), as produced
/// by [`gs_scatter::planner::Planner`]; items are laid out contiguously
/// in that order (displacement layout). `faults` is validated against
/// the rank count; `recovery` selects degraded (`None`) vs recovered
/// (`Some`) mode — see the module docs.
///
/// In recovered mode the loop terminates because every round that fails
/// to deliver everything declares at least one more rank dead, and the
/// root (which cannot fault) always absorbs its own share.
pub fn simulate_scatter_ft(
    procs: &[&Processor],
    counts: &[usize],
    faults: &FaultPlan,
    recovery: Option<&RecoveryConfig>,
) -> Result<FtScatterSim, PlanError> {
    assert_eq!(procs.len(), counts.len(), "one count per processor");
    let p = procs.len();
    if p == 0 {
        return Err(PlanError::InvalidPlatform("no processors".into()));
    }
    faults.validate(p)?;
    let root = p - 1;
    let n: u64 = counts.iter().map(|&c| c as u64).sum();

    let mut session = FaultSession::new(faults, p);
    let mut incidents: Vec<Incident> = Vec::new();
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut assignments: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    let mut replans: Vec<ReplanRecord> = Vec::new();
    let mut lost_items = 0u64;
    let mut pool: Vec<(u64, u64)> = Vec::new();
    let mut t = 0.0f64;

    // Round 0: the planned blocks, contiguous in scatter order.
    let mut offset = 0u64;
    let mut round: Vec<(usize, Vec<(u64, u64)>)> = counts
        .iter()
        .enumerate()
        .map(|(rank, &c)| {
            let lo = offset;
            offset += c as u64;
            (rank, if c == 0 { Vec::new() } else { vec![(lo, offset)] })
        })
        .collect();

    loop {
        for (rank, ranges) in round.drain(..) {
            if ranges.is_empty() {
                continue;
            }
            let items: u64 = ranges.iter().map(|&(lo, hi)| hi - lo).sum();
            let nominal = procs[rank].comm.eval(items as usize);
            let out = session.send(rank, t, nominal, recovery);
            incidents.extend(outcome_incidents(rank, items, &procs[rank].name, &out));
            t = out.port_free;
            match out.delivered {
                Some((start, end)) => {
                    deliveries.push(Delivery { rank, start, end, ranges: ranges.clone() });
                    assignments[rank].extend(ranges);
                }
                None => {
                    if recovery.is_some() {
                        pool.extend(ranges);
                    } else {
                        lost_items += items;
                    }
                }
            }
        }
        if pool.is_empty() {
            break;
        }
        // Re-plan the residual over the survivors. Only reachable in
        // recovered mode (degraded mode never fills the pool).
        let rc = recovery.expect("pool only fills in recovered mode");
        let residual: u64 = pool.iter().map(|&(lo, hi)| hi - lo).sum();
        let alive: Vec<bool> = (0..p).map(|r| !session.is_dead(r)).collect();
        // Re-plans route through the session's plan cache: after the
        // first one, later rounds warm-start from the surviving DP
        // columns (bit-identical results, less recomputation).
        let rp = replan_residual_with(
            procs,
            &alive,
            residual,
            rc.replan_strategy,
            Some(session.plan_cache()),
        )?;
        incidents.push(Incident {
            t,
            kind: IncidentKind::Replan,
            rank: root,
            items: residual,
            info: format!(
                "redistributing {residual} undelivered items over {} survivors",
                rp.positions.len()
            ),
        });
        replans.push(ReplanRecord {
            t,
            items: residual,
            survivors: rp.positions.clone(),
            counts: rp.counts.clone(),
        });
        for (&pos, &c) in rp.positions.iter().zip(&rp.counts) {
            if c > 0 {
                round.push((pos, take_items(&mut pool, c)));
            }
        }
        debug_assert!(pool.is_empty(), "re-plan must drain the pool");
    }

    // Compute phase: each rank starts once its last block has arrived
    // (deferred compute), stretched by any slowdown fault.
    let mut timeline = Timeline {
        comm_start: vec![0.0; p],
        comm_end: vec![0.0; p],
        finish: vec![0.0; p],
    };
    let mut makespan: f64 = t;
    for rank in 0..p {
        if assignments[rank].is_empty() {
            continue;
        }
        let (mut first, mut last) = (f64::INFINITY, 0.0f64);
        for d in deliveries.iter().filter(|d| d.rank == rank) {
            first = first.min(d.start);
            last = last.max(d.end);
        }
        let items: u64 = assignments[rank].iter().map(|&(lo, hi)| hi - lo).sum();
        let nominal = procs[rank].comp.eval(items as usize);
        // The root drives the port, so it computes only once its last
        // send is done (in fault-free runs last == t already).
        let start = if rank == root { last.max(t) } else { last };
        let finish = start + session.compute_duration(rank, start, nominal);
        timeline.comm_start[rank] = first;
        timeline.comm_end[rank] = start;
        timeline.finish[rank] = finish;
        makespan = makespan.max(finish);
    }
    let computed_items: u64 =
        assignments.iter().flatten().map(|&(lo, hi)| hi - lo).sum();
    debug_assert_eq!(computed_items + lost_items, n, "items must be conserved");

    // The fault path is event-driven too (every delivery and compute
    // interval is a start/end pair); account it under the same sim_*
    // families the plain engine uses.
    let reg = gs_scatter::metrics::Registry::global();
    reg.counter("sim_runs_total", "discrete-event scatter simulations run").inc();
    let computing = assignments.iter().filter(|a| !a.is_empty()).count();
    reg.counter("sim_events_total", "simulator events processed")
        .add(2 * (deliveries.len() + computing) as u64);

    let dead = (0..p).map(|r| session.is_dead(r)).collect();
    Ok(FtScatterSim {
        timeline,
        makespan,
        deliveries,
        assignments,
        computed_items,
        lost_items,
        dead,
        replans,
        incidents,
        recovered: recovery.is_some(),
    })
}

/// Simulates a [`Plan`] on its platform under `faults` — the plan's
/// scatter order and counts, with the fault plan expressed in that same
/// rank space.
pub fn simulate_plan_ft(
    platform: &Platform,
    plan: &Plan,
    faults: &FaultPlan,
    recovery: Option<&RecoveryConfig>,
) -> Result<FtScatterSim, PlanError> {
    let view = platform.ordered(&plan.order);
    let counts = plan.counts_in_order();
    simulate_scatter_ft(&view, &counts, faults, recovery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_scatter, SimConfig};
    use gs_scatter::fault::{Fault, FaultKind};

    fn procs() -> Vec<Processor> {
        vec![
            Processor::linear("a", 1.0, 2.0),
            Processor::linear("b", 2.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ]
    }

    #[test]
    fn fault_free_run_matches_plain_simulator() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let ft = simulate_scatter_ft(&view, &counts, &FaultPlan::none(), None).unwrap();
        let plain = simulate_scatter(&view, &counts, &SimConfig::ideal());
        assert_eq!(ft.timeline, plain.timeline);
        assert_eq!(ft.makespan, plain.makespan);
        assert_eq!(ft.computed_items, 6);
        assert_eq!(ft.lost_items, 0);
        assert!(ft.incidents.is_empty() && ft.replans.is_empty());
        // Recovered mode on a healthy grid is also identical.
        let rec = simulate_scatter_ft(
            &view,
            &counts,
            &FaultPlan::none(),
            Some(&RecoveryConfig::default()),
        )
        .unwrap();
        assert_eq!(rec.timeline, plain.timeline);
    }

    #[test]
    fn degraded_mode_loses_crashed_ranks_items() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        // Rank 0's transfer spans [0, 3]; it crashes at 1.
        let faults =
            FaultPlan { faults: vec![Fault { rank: 0, kind: FaultKind::Crash { at: 1.0 } }] };
        let sim = simulate_scatter_ft(&view, &counts, &faults, None).unwrap();
        assert_eq!(sim.lost_items, 3);
        assert_eq!(sim.computed_items, 3);
        assert!(sim.assignments[0].is_empty());
        // The port is still held for the full transfer (single-port).
        assert_eq!(sim.deliveries[0].rank, 1);
        assert_eq!(sim.deliveries[0].start, 3.0);
        let trace = sim.trace(&["a", "b", "root"], 8);
        trace.validate().unwrap();
        assert_eq!(trace.label.as_deref(), Some("degraded"));
    }

    #[test]
    fn recovered_mode_replans_over_survivors() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let faults =
            FaultPlan { faults: vec![Fault { rank: 0, kind: FaultKind::Crash { at: 1.0 } }] };
        let rc = RecoveryConfig::default();
        let sim = simulate_scatter_ft(&view, &counts, &faults, Some(&rc)).unwrap();
        // Everything is computed despite the crash.
        assert_eq!(sim.computed_items, 6);
        assert_eq!(sim.lost_items, 0);
        assert!(sim.dead[0] && !sim.dead[1] && !sim.dead[2]);
        assert_eq!(sim.replans.len(), 1);
        assert_eq!(sim.replans[0].items, 3);
        assert_eq!(sim.replans[0].survivors, vec![1, 2]);
        // Items 0..6 are tiled exactly once.
        let mut all: Vec<(u64, u64)> = sim.assignments.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut cursor = 0;
        for (lo, hi) in all {
            assert_eq!(lo, cursor, "gap or overlap at {lo}");
            cursor = hi;
        }
        assert_eq!(cursor, 6);
        // Incidents: 3 faults (attempts) + 2 retries + 1 replan.
        let trace = sim.trace(&["a", "b", "root"], 8);
        trace.validate().unwrap();
        let summary = trace.summarize().unwrap();
        assert_eq!(summary.faults, 3);
        assert_eq!(summary.retries, 2);
        assert_eq!(summary.replans, 1);
        assert_eq!(trace.label.as_deref(), Some("recovered"));
        // Byte conservation holds on the trace events too.
        assert_eq!(summary.total_bytes, 6 * 8);
    }

    #[test]
    fn transient_fault_recovers_without_replan() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let faults = FaultPlan {
            faults: vec![Fault { rank: 1, kind: FaultKind::Transient { failures: 1 } }],
        };
        let sim =
            simulate_scatter_ft(&view, &counts, &faults, Some(&RecoveryConfig::default()))
                .unwrap();
        assert_eq!(sim.computed_items, 6);
        assert!(sim.replans.is_empty());
        assert!(!sim.dead.iter().any(|&d| d));
        // The retry pushed rank 1's delivery later than the fault-free run.
        let plain = simulate_scatter(&view, &counts, &SimConfig::ideal());
        assert!(sim.makespan > plain.makespan);
    }

    #[test]
    fn slowdown_stretches_compute_only() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        // Rank 0 computes over [3, 9]; slow it 2x from t = 3.
        let faults = FaultPlan {
            faults: vec![Fault { rank: 0, kind: FaultKind::Slowdown { start: 3.0, factor: 2.0 } }],
        };
        let sim = simulate_scatter_ft(&view, &counts, &faults, None).unwrap();
        assert_eq!(sim.timeline.finish[0], 3.0 + 12.0);
        assert_eq!(sim.timeline.finish[1], 9.0); // untouched
        assert_eq!(sim.lost_items, 0);
    }

    #[test]
    fn plan_level_wrapper_runs_in_plan_order() {
        use gs_scatter::ordering::OrderPolicy;
        use gs_scatter::planner::{Planner, Strategy};
        let platform = Platform::new(procs(), 2).unwrap();
        let plan = Planner::new(platform.clone())
            .strategy(Strategy::Exact)
            .order_policy(OrderPolicy::DescendingBandwidth)
            .plan(60)
            .unwrap();
        let sim = simulate_plan_ft(&platform, &plan, &FaultPlan::none(), None).unwrap();
        assert_eq!(sim.computed_items, 60);
    }
}
