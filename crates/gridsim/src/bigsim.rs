//! Million-rank scatter simulation: a closure-free fast path.
//!
//! [`crate::sim::simulate_scatter`] drives the generic [`crate::engine`]:
//! every event is a boxed closure over an `Rc<RefCell<...>>` state cell.
//! That is the right shape for extensibility, but at 10⁵–10⁶ ranks the
//! per-event allocation and indirection dominate. This module simulates
//! the *same model* — single-port root, scatter order, deferred compute —
//! with bare-rank events stored inline in a [`CalendarQueue`]: no
//! allocation per event, no reference counting, no dynamic dispatch. The
//! root's sequential send chain never even enters the queue (see
//! [`simulate_star`]); only pending `ComputeEnd`s do.
//!
//! The two paths are observationally equivalent: on an ideal (no
//! background load) platform, [`simulate_star`] produces the identical
//! event stream, timeline, and makespan as `simulate_scatter`, bit for
//! bit — enforced by unit tests here and `tests/proptest_simscale.rs`.
//! Background-load traces are deliberately out of scope; use the classic
//! engine for perturbed runs.
//!
//! Processor identity is a bare index (`u32`) — at million-rank scale the
//! simulator never touches a name `String`. When names matter (small-p
//! trace emission, `gs report`), intern them through
//! [`gs_scatter::intern::NameInterner`] and resolve on the way out.

use gs_scatter::cost::Processor;
use gs_scatter::distribution::Timeline;
use gs_scatter::obs::span;

use crate::calendar::CalendarQueue;
use crate::engine::{SimEvent, SimEventKind};
use crate::sim::ScatterSim;

/// Result of one fast-path scatter simulation.
#[derive(Debug, Clone)]
pub struct BigScatterSim {
    /// Per-processor schedule, in scatter order.
    pub timeline: Timeline,
    /// Overall makespan.
    pub makespan: f64,
    /// Simulator events processed (4 per processor: send start/end,
    /// compute start/end) — the unit `sim_events_total` counts.
    pub events_processed: u64,
    /// Peak pending-event count in the calendar queue (pending
    /// `ComputeEnd`s; the root's in-flight send is held outside it).
    pub queue_peak: usize,
    /// Full event trace, in execution order. Empty unless the run was
    /// asked to `record` (at 10⁶ ranks the trace alone is ~100 MB).
    pub events: Vec<SimEvent>,
}

impl BigScatterSim {
    /// Repackages the run as a [`ScatterSim`] so the classic trace
    /// emission ([`ScatterSim::trace`]) applies. Requires a recorded run.
    pub fn into_scatter_sim(self) -> ScatterSim {
        ScatterSim { timeline: self.timeline, events: self.events, makespan: self.makespan }
    }
}

/// Per-position transfer and compute durations, the fast path's whole
/// input: `comm[i]` seconds on the root's port, then `work[i]` seconds of
/// compute, for the processor at scatter position `i` (root last).
pub fn star_durations(procs: &[&Processor], counts: &[usize]) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(procs.len(), counts.len(), "one count per processor");
    let comm = procs.iter().zip(counts).map(|(p, &c)| p.comm.eval(c)).collect();
    let work = procs.iter().zip(counts).map(|(p, &c)| p.comp.eval(c)).collect();
    (comm, work)
}

/// Simulates one single-port scatter + compute phase from bare
/// durations. `record` keeps the full [`SimEvent`] stream (needed for
/// trace emission and the equivalence tests; skip it at large `p`).
///
/// Event order — including `(time, seq)` tie-breaks — replicates
/// [`crate::sim::simulate_scatter`] exactly: the send chain advances the
/// root's port in scatter order, each block's compute is scheduled
/// *before* the next send, so a zero-work compute that ties with the
/// next transfer's completion still pops first.
///
/// The single-port root has exactly one transfer in flight at any time,
/// so its `SendEnd` never needs to live in the queue: it is held as a
/// local `(time, seq, rank)` and raced against the calendar's minimum
/// `ComputeEnd` by `(time, seq)`. Sequence numbers are still allocated
/// in the classic engine's insertion order (compute first, next send
/// second), so the processed-event order is unchanged — only the queue
/// traffic halves.
pub fn simulate_star(comm: &[f64], work: &[f64], record: bool) -> BigScatterSim {
    if record {
        simulate_star_impl::<true>(comm, work)
    } else {
        simulate_star_impl::<false>(comm, work)
    }
}

/// Monomorphized body of [`simulate_star`] — `RECORD` is a compile-time
/// flag so the unrecorded (large-`p`) loop carries no trace branches.
fn simulate_star_impl<const RECORD: bool>(comm: &[f64], work: &[f64]) -> BigScatterSim {
    assert_eq!(comm.len(), work.len(), "one work term per transfer");
    // One span per *phase*, never per event: at 10⁶ ranks even a no-op
    // per-event guard would dominate the bare-rank loop.
    let mut star_span = span::span("sim", "sim.star");
    let p = comm.len();
    assert!(p <= u32::MAX as usize, "rank index must fit u32");
    let mut timeline = Timeline {
        comm_start: vec![0.0; p],
        comm_end: vec![0.0; p],
        finish: vec![0.0; p],
    };
    let mut events: Vec<SimEvent> = Vec::with_capacity(if RECORD { 4 * p } else { 0 });
    // Pending ComputeEnds, payload = rank. The bucket `Vec`s own every
    // pending event inline (this is the "arena"); nothing is boxed.
    // Seed the bucket width with the mean send gap — the single-port
    // root emits one ComputeEnd per transfer, so that is the mean event
    // spacing and puts ~1 entry per bucket from the start.
    let mean_gap = comm.iter().sum::<f64>() / p.max(1) as f64;
    let mut q: CalendarQueue<u32> = if mean_gap.is_finite() && mean_gap > 0.0 {
        CalendarQueue::with_width(mean_gap)
    } else {
        CalendarQueue::new()
    };
    let mut seq = 0u64;
    let mut now = 0.0f64;
    // The root's one in-flight transfer: (end time, seq, rank).
    let mut pending_send: Option<(f64, u64, u32)> = None;
    if p > 0 {
        if RECORD {
            events.push(SimEvent { time: 0.0, kind: SimEventKind::SendStart, proc: 0 });
        }
        timeline.comm_start[0] = 0.0;
        seq += 1;
        pending_send = Some((now + comm[0], seq, 0));
    }
    // Cached q.peek(): pushes can only lower the minimum (one compare),
    // so a full locate is needed only after a pop.
    let mut qmin: Option<(f64, u64)> = None;
    let run_span = span::span("sim", "sim.run");
    loop {
        let take_send = match (pending_send, qmin) {
            (Some((st, ss, _)), Some((qt, qs))) => st < qt || (st == qt && ss < qs),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_send {
            let (t, _, i) = pending_send.take().expect("send branch requires a pending send");
            debug_assert!(t >= now, "time must be monotone");
            now = t;
            let i = i as usize;
            if RECORD {
                events.push(SimEvent { time: t, kind: SimEventKind::SendEnd, proc: i });
                events.push(SimEvent { time: t, kind: SimEventKind::ComputeStart, proc: i });
            }
            timeline.comm_end[i] = t;
            // Compute first, next send second — the classic engine's
            // insertion order, hence its tie-break order.
            seq += 1;
            let ct = t + work[i];
            q.push(ct, seq, i as u32);
            qmin = match qmin {
                Some((qt, qs)) if qt < ct || (qt == ct && qs < seq) => Some((qt, qs)),
                _ => Some((ct, seq)),
            };
            if i + 1 < p {
                if RECORD {
                    events.push(SimEvent { time: t, kind: SimEventKind::SendStart, proc: i + 1 });
                }
                timeline.comm_start[i + 1] = t;
                seq += 1;
                pending_send = Some((t + comm[i + 1], seq, (i + 1) as u32));
            }
        } else {
            let (t, _, i) = q.pop().expect("non-send branch requires a queued compute");
            debug_assert!(t >= now, "time must be monotone");
            now = t;
            if RECORD {
                events.push(SimEvent { time: t, kind: SimEventKind::ComputeEnd, proc: i as usize });
            }
            timeline.finish[i as usize] = t;
            qmin = q.peek();
        }
    }
    drop(run_span);
    let events_processed = 4 * p as u64;
    let stats = q.stats();
    star_span.attr("p", p);
    star_span.attr("events", events_processed);
    star_span.attr("queue_peak", stats.peak_len);
    star_span.attr("makespan", now);
    let reg = gs_scatter::metrics::Registry::global();
    reg.counter("sim_runs_total", "discrete-event scatter simulations run").inc();
    reg.counter("sim_events_total", "simulator events processed").add(events_processed);
    reg.gauge("sim_queue_depth", "peak pending events in the last simulator run")
        .set(stats.peak_len as f64);
    reg.counter("sim_queue_resizes_total", "calendar-queue bucket-array rebuilds")
        .add(stats.resizes);
    BigScatterSim {
        timeline,
        makespan: now,
        events_processed,
        queue_peak: stats.peak_len,
        events,
    }
}

/// A deterministic synthetic heterogeneous star: per-position
/// `(beta, alpha)` cost slopes (s/item), root last with `beta = 0`.
/// Worker parameters vary by a fixed mixing function of the index, so
/// any two runs (and any two machines) build the identical platform.
pub fn synthetic_star(p: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(p >= 1, "a star needs at least the root");
    let mut beta = Vec::with_capacity(p);
    let mut alpha = Vec::with_capacity(p);
    for i in 0..p - 1 {
        let i = i as u64;
        // Cheap integer mixing: spread link and CPU speeds over roughly
        // one decade each, deterministically.
        beta.push(1e-6 * (1.0 + (i.wrapping_mul(37) % 97) as f64 / 12.0));
        alpha.push(1e-5 * (1.0 + (i.wrapping_mul(61) % 89) as f64 / 10.0));
    }
    beta.push(0.0); // root: no self-transfer cost
    alpha.push(1e-5);
    (beta, alpha)
}

/// Splits `items` over the star proportionally to CPU speed (`1/alpha`),
/// exactly (the counts sum to `items`), in `O(p)`. The exact DP is
/// `O(p·n·log n)` — unusable at `p = 10⁶` — and for a *synthetic*
/// capacity experiment the proportional split exercises the simulator
/// identically.
pub fn proportional_counts(alpha: &[f64], items: u64) -> Vec<u64> {
    let total: f64 = alpha.iter().map(|&a| 1.0 / a).sum();
    let mut counts = Vec::with_capacity(alpha.len());
    let mut cum = 0.0f64;
    let mut assigned = 0u64;
    for &a in alpha {
        cum += 1.0 / a;
        // Cumulative rounding keeps the running sum exact.
        let upto = ((items as f64) * (cum / total)).floor() as u64;
        let upto = upto.min(items);
        counts.push(upto - assigned);
        assigned = upto;
    }
    if let Some(last) = counts.last_mut() {
        *last += items - assigned; // float slack lands on the root
    }
    counts
}

/// Convenience wrapper: simulate the synthetic star at `p` ranks with
/// `items` data items, without recording the event stream.
pub fn simulate_synthetic_star(p: usize, items: u64) -> BigScatterSim {
    let (beta, alpha) = synthetic_star(p);
    let counts = proportional_counts(&alpha, items);
    let comm: Vec<f64> = beta.iter().zip(&counts).map(|(b, &c)| b * c as f64).collect();
    let work: Vec<f64> = alpha.iter().zip(&counts).map(|(a, &c)| a * c as f64).collect();
    simulate_star(&comm, &work, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_scatter, SimConfig};

    fn procs() -> Vec<Processor> {
        vec![
            Processor::linear("a", 1.0, 2.0),
            Processor::linear("b", 2.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ]
    }

    #[test]
    fn matches_classic_engine_bit_for_bit() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let classic = simulate_scatter(&view, &counts, &SimConfig::ideal());
        let (comm, work) = star_durations(&view, &counts);
        let fast = simulate_star(&comm, &work, true);
        assert_eq!(fast.events, classic.events);
        assert_eq!(fast.timeline, classic.timeline);
        assert_eq!(fast.makespan.to_bits(), classic.makespan.to_bits());
    }

    #[test]
    fn zero_work_tie_breaks_like_classic() {
        // Zero compute makes ComputeEnd(i) tie with SendEnd(i+1) when
        // comm[i+1] == 0 too; the classic engine pops the compute first.
        let ps = [
            Processor::linear("a", 1.0, 0.0),
            Processor::linear("b", 0.0, 0.0),
            Processor::linear("root", 0.0, 0.0),
        ];
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![2usize, 3, 1];
        let classic = simulate_scatter(&view, &counts, &SimConfig::ideal());
        let (comm, work) = star_durations(&view, &counts);
        let fast = simulate_star(&comm, &work, true);
        assert_eq!(fast.events, classic.events);
    }

    #[test]
    fn empty_platform_is_a_noop() {
        let sim = simulate_star(&[], &[], true);
        assert_eq!(sim.makespan, 0.0);
        assert!(sim.events.is_empty());
    }

    #[test]
    fn unrecorded_run_keeps_timeline_only() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let (comm, work) = star_durations(&view, &counts);
        let rec = simulate_star(&comm, &work, true);
        let bare = simulate_star(&comm, &work, false);
        assert!(bare.events.is_empty());
        assert_eq!(bare.timeline, rec.timeline);
        assert_eq!(bare.makespan, rec.makespan);
        assert_eq!(bare.events_processed, 12);
    }

    #[test]
    fn proportional_counts_sum_exactly() {
        for p in [1usize, 2, 17, 1000] {
            let (_, alpha) = synthetic_star(p);
            for items in [0u64, 1, 999, 123_457] {
                let counts = proportional_counts(&alpha, items);
                assert_eq!(counts.len(), p);
                assert_eq!(counts.iter().sum::<u64>(), items);
            }
        }
    }

    #[test]
    fn faster_cpus_get_more_items() {
        let alpha = vec![1e-5, 4e-5, 1e-5]; // middle CPU 4x slower
        let counts = proportional_counts(&alpha, 90_000);
        assert!(counts[0] > 3 * counts[1]);
        assert!(counts[2] > 3 * counts[1]);
    }

    #[test]
    fn synthetic_star_scales_to_many_ranks() {
        let sim = simulate_synthetic_star(50_000, 500_000);
        assert_eq!(sim.events_processed, 4 * 50_000);
        assert!(sim.makespan > 0.0);
        assert!(sim.queue_peak > 0);
        // Every rank finished after its transfer completed.
        assert!(sim
            .timeline
            .finish
            .iter()
            .zip(&sim.timeline.comm_end)
            .all(|(f, c)| f >= c));
    }

    #[test]
    fn into_scatter_sim_round_trips_trace() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = vec![3usize, 2, 1];
        let (comm, work) = star_durations(&view, &counts);
        let fast = simulate_star(&comm, &work, true).into_scatter_sim();
        let trace = fast.trace(&["a", "b", "root"], &counts, 8);
        trace.validate().unwrap();
        assert_eq!(trace.summarize().unwrap().makespan, fast.makespan);
    }
}
