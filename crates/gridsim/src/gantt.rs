//! ASCII Gantt charts in the style of the paper's Fig. 1: per-processor
//! rows showing the wait / receive / compute phases of a scatter.

use gs_scatter::distribution::Timeline;

/// Characters used by [`render_gantt`].
pub mod glyphs {
    /// Idle, waiting for the root's port (the "stair effect").
    pub const WAIT: char = '.';
    /// Receiving data from the root.
    pub const RECV: char = '=';
    /// Computing.
    pub const COMPUTE: char = '#';
    /// Idle after finishing, before the global makespan.
    pub const DONE: char = ' ';
}

/// Renders a Gantt chart of a timeline (scatter order) as fixed-width
/// ASCII, one row per processor, `width` time columns.
///
/// ```text
/// P1 |==########                |
/// P2 |..====#######             |
/// P3 |......===########         |
/// P4 |.........=====########### |
///    0s ................... 21.0s
/// ```
pub fn render_gantt(names: &[&str], tl: &Timeline, width: usize) -> String {
    assert_eq!(names.len(), tl.finish.len(), "one name per processor");
    assert!(width >= 10, "width too small to be legible");
    let makespan = tl.makespan();
    let name_w = names.iter().map(|n| n.len()).max().unwrap_or(0);
    let scale = if makespan > 0.0 { width as f64 / makespan } else { 0.0 };
    let col = |t: f64| ((t * scale).round() as usize).min(width);

    let mut out = String::new();
    for (i, name) in names.iter().enumerate() {
        let c_recv = col(tl.comm_start[i]);
        let c_comp = col(tl.comm_end[i]);
        let c_done = col(tl.finish[i]);
        let mut row = String::with_capacity(width);
        for c in 0..width {
            row.push(if c < c_recv {
                glyphs::WAIT
            } else if c < c_comp {
                glyphs::RECV
            } else if c < c_done {
                glyphs::COMPUTE
            } else {
                glyphs::DONE
            });
        }
        // Ensure at least one RECV glyph for non-empty transfers that
        // round to zero columns (the paper's comm times are tiny).
        if tl.comm_end[i] > tl.comm_start[i] && c_comp == c_recv && c_recv < width {
            row.replace_range(
                row.char_indices()
                    .nth(c_recv)
                    .map(|(o, ch)| o..o + ch.len_utf8())
                    .unwrap(),
                &glyphs::RECV.to_string(),
            );
        }
        out.push_str(&format!("{name:>name_w$} |{row}|\n"));
    }
    let axis = format!("0s{}{makespan:.1}s", " ".repeat(width.saturating_sub(8)));
    out.push_str(&format!("{} {axis}\n", " ".repeat(name_w)));
    out
}

/// Renders the legend for [`render_gantt`].
pub fn legend() -> String {
    format!(
        "{} waiting   {} receiving   {} computing\n",
        glyphs::WAIT,
        glyphs::RECV,
        glyphs::COMPUTE
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> Timeline {
        Timeline {
            comm_start: vec![0.0, 2.0, 4.0],
            comm_end: vec![2.0, 4.0, 4.0],
            finish: vec![10.0, 8.0, 9.0],
        }
    }

    #[test]
    fn renders_all_rows_and_axis() {
        let s = render_gantt(&["P1", "P2", "root"], &tl(), 40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("  P1 |"));
        assert!(lines[2].starts_with("root |"));
        assert!(lines[3].contains("10.0s"));
    }

    #[test]
    fn stair_effect_visible() {
        let s = render_gantt(&["P1", "P2", "root"], &tl(), 40);
        let lines: Vec<&str> = s.lines().collect();
        // Later processors have longer leading wait runs.
        let waits = |l: &str| l.chars().skip_while(|&c| c != '|').skip(1)
            .take_while(|&c| c == glyphs::WAIT).count();
        assert!(waits(lines[0]) < waits(lines[1]));
        assert!(waits(lines[1]) < waits(lines[2]));
    }

    #[test]
    fn rows_are_equal_width() {
        let s = render_gantt(&["a", "bb", "ccc"], &tl(), 30);
        let widths: Vec<usize> = s
            .lines()
            .take(3)
            .map(|l| l.chars().count())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn zero_makespan_renders() {
        let tl = Timeline {
            comm_start: vec![0.0],
            comm_end: vec![0.0],
            finish: vec![0.0],
        };
        let s = render_gantt(&["p"], &tl, 20);
        assert!(s.contains("0.0s"));
    }

    #[test]
    fn tiny_comm_still_marked() {
        let tl = Timeline {
            comm_start: vec![0.0],
            comm_end: vec![1e-6],
            finish: vec![100.0],
        };
        let s = render_gantt(&["p"], &tl, 40);
        assert!(s.contains(glyphs::RECV), "transfer must be visible: {s}");
    }

    #[test]
    fn legend_mentions_all_glyphs() {
        let l = legend();
        for g in ['.', '=', '#'] {
            assert!(l.contains(g));
        }
    }
}
