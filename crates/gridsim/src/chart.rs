//! Per-processor bar charts in the style of the paper's Figs. 2–4: for
//! each processor (x axis of the figures), the total time, the
//! communication time, and the amount of data received.

use gs_scatter::distribution::Timeline;

/// One row of a figure table.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Machine name.
    pub name: String,
    /// Items received.
    pub data: usize,
    /// Time spent receiving, seconds.
    pub comm_time: f64,
    /// Wait before receiving (stair), seconds.
    pub wait_time: f64,
    /// Finish time, seconds (the figures' "total time" bars).
    pub total_time: f64,
}

/// Tabulates a timeline into figure rows.
pub fn figure_rows(names: &[&str], counts: &[usize], tl: &Timeline) -> Vec<FigureRow> {
    assert_eq!(names.len(), counts.len());
    assert_eq!(names.len(), tl.finish.len());
    (0..names.len())
        .map(|i| FigureRow {
            name: names[i].to_string(),
            data: counts[i],
            comm_time: tl.comm_end[i] - tl.comm_start[i],
            wait_time: tl.comm_start[i],
            total_time: tl.finish[i],
        })
        .collect()
}

/// Renders rows as the text analogue of Figs. 2–4: a table with a
/// horizontal bar for the total time of each processor (`#`), prefixed by
/// its pre-receive wait (`.`), plus numeric columns.
///
/// ```text
/// processor        data   comm(s)  total(s)  0 ......................... 853
/// caseb           51069      0.5     236.9   ###########
/// ...
/// ```
pub fn render_figure(title: &str, rows: &[FigureRow], width: usize) -> String {
    let max_total = rows.iter().map(|r| r.total_time).fold(0.0f64, f64::max);
    let scale = if max_total > 0.0 { width as f64 / max_total } else { 0.0 };
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(9).max(9);

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<name_w$} {:>9} {:>9} {:>9}   0 {} {max_total:.0}s\n",
        "processor",
        "data",
        "comm(s)",
        "total(s)",
        ".".repeat(width.saturating_sub(10)),
    ));
    for r in rows {
        let wait_cols = (r.wait_time * scale).round() as usize;
        let total_cols = ((r.total_time * scale).round() as usize).min(width);
        let busy = total_cols.saturating_sub(wait_cols);
        out.push_str(&format!(
            "{:<name_w$} {:>9} {:>9.2} {:>9.1}   {}{}\n",
            r.name,
            r.data,
            r.comm_time,
            r.total_time,
            ".".repeat(wait_cols),
            "#".repeat(busy),
        ));
    }
    out
}

/// A compact comparison line quoted under each figure: min/max finish and
/// the §5.2 imbalance percentage.
pub fn summary_line(rows: &[FigureRow]) -> String {
    let min = rows.iter().map(|r| r.total_time).fold(f64::INFINITY, f64::min);
    let max = rows.iter().map(|r| r.total_time).fold(0.0f64, f64::max);
    let imb = if max > 0.0 { (max - min) / max * 100.0 } else { 0.0 };
    format!(
        "earliest finish {min:.0} s, latest {max:.0} s, max difference {imb:.0}% of total duration"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> Timeline {
        Timeline {
            comm_start: vec![0.0, 3.0],
            comm_end: vec![3.0, 5.0],
            finish: vec![10.0, 20.0],
        }
    }

    #[test]
    fn rows_extracted() {
        let rows = figure_rows(&["a", "b"], &[30, 20], &tl());
        assert_eq!(rows[0].data, 30);
        assert_eq!(rows[0].comm_time, 3.0);
        assert_eq!(rows[0].wait_time, 0.0);
        assert_eq!(rows[1].wait_time, 3.0);
        assert_eq!(rows[1].total_time, 20.0);
    }

    #[test]
    fn render_contains_names_and_numbers() {
        let rows = figure_rows(&["alpha", "beta"], &[30, 20], &tl());
        let s = render_figure("Figure X", &rows, 40);
        assert!(s.contains("Figure X"));
        assert!(s.contains("alpha"));
        assert!(s.contains("30"));
        assert!(s.contains('#'));
    }

    #[test]
    fn bars_scale_with_total_time() {
        let rows = figure_rows(&["a", "b"], &[1, 1], &tl());
        let s = render_figure("t", &rows, 40);
        let bar_len = |line: &str| line.chars().filter(|&c| c == '#').count();
        let lines: Vec<&str> = s.lines().skip(2).collect();
        assert!(bar_len(lines[0]) < bar_len(lines[1]));
        assert_eq!(bar_len(lines[1]), 40 - (3.0 / 20.0 * 40.0f64).round() as usize);
    }

    #[test]
    fn summary_line_quotes_imbalance() {
        let rows = figure_rows(&["a", "b"], &[1, 1], &tl());
        let s = summary_line(&rows);
        assert!(s.contains("10 s"));
        assert!(s.contains("20 s"));
        assert!(s.contains("50%"));
    }
}
