//! A calendar queue (Brown 1988): an amortised-O(1) priority queue for
//! event timestamps.
//!
//! The binary heap behind [`crate::engine::Engine`] costs `O(log n)` per
//! operation with a data-dependent comparison chain; at 10⁵–10⁶ pending
//! events that becomes the simulator's bottleneck. A calendar queue hashes
//! each event by time into one of `n_buckets` "days" of width `width`
//! seconds and pops by scanning the current day — `O(1)` amortised when
//! the width tracks the mean event spacing, which periodic resizes
//! maintain.
//!
//! **Determinism contract** (normative, see `docs/simulation.md`): pops
//! come out in strictly ascending `(time, seq)` order, where `seq` is the
//! caller-supplied insertion sequence number. This is exactly the order of
//! the engine's binary heap, so the two structures are observationally
//! equivalent — a property enforced by `tests/proptest_simscale.rs`.
//!
//! The implementation favours that contract over raw speed: buckets are
//! kept sorted ascending in a `VecDeque` (the minimum pops off the front
//! in `O(1)`, and a push that lands at the back — the common case for
//! the near-monotone schedules event simulations produce — is a single
//! compare plus append), and a full empty sweep falls back to a direct
//! minimum search rather than spinning over empty years.

use std::collections::VecDeque;

/// One scheduled entry.
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

/// Statistics a queue reports about itself (for `sim_*` metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CalendarStats {
    /// Number of bucket-array rebuilds (grow or shrink).
    pub resizes: u64,
    /// Peak number of simultaneously pending events.
    pub peak_len: usize,
}

/// A deterministic calendar queue ordered by `(time, seq)`.
///
/// `time` must be finite and non-NaN; `seq` must be unique per entry
/// (the engine's monotone insertion counter). Entries may be pushed in
/// any time order — pushing before the current scan position rewinds
/// the scan, so correctness never depends on monotone insertion.
pub struct CalendarQueue<T> {
    buckets: Vec<VecDeque<Entry<T>>>,
    /// Seconds per bucket.
    width: f64,
    /// Cached `1 / width` — [`day_of`](Self::day_of) is on the per-event
    /// hot path and a multiply is several times cheaper than a divide.
    inv_width: f64,
    len: usize,
    /// Virtual day (window index) the pop scan is currently examining;
    /// the bucket is `cur_day & (n - 1)`. The scan compares *days*, not
    /// float window bounds: an entry is due exactly when
    /// `day_of(entry.time) <= cur_day`. Because placement and scanning
    /// use the same (monotone) day function, no entry can ever sit on a
    /// window boundary and be misclassified — a hazard a running
    /// `top += width` float accumulator does have (ulp drift can defer a
    /// boundary entry by a whole year, reordering it past later events).
    cur_day: u64,
    stats: CalendarStats,
}

/// Initial / minimum bucket count (kept a power of two for cheap masks).
const MIN_BUCKETS: usize = 16;

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue (1-second buckets until the first rebuild).
    pub fn new() -> Self {
        CalendarQueue::with_width(1.0)
    }

    /// An empty queue with `width` seconds per bucket. Pass the expected
    /// mean spacing between event times: at ~1 entry per bucket the
    /// queue is O(1) per operation from the start, without waiting for a
    /// resize to refit a bad default. Width is a performance hint only —
    /// pop order is identical for every width.
    pub fn with_width(width: f64) -> Self {
        let inv_width = 1.0 / width;
        assert!(
            width.is_finite() && width > 0.0 && inv_width.is_finite() && inv_width > 0.0,
            "bucket width must be positive and invertible"
        );
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            width,
            inv_width,
            len: 0,
            cur_day: 0,
            stats: CalendarStats::default(),
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize/peak statistics accumulated so far.
    pub fn stats(&self) -> CalendarStats {
        self.stats
    }

    /// Virtual day (window index) of `time`. Monotone in `time`
    /// (multiply by a positive constant, then a saturating cast), which
    /// is the only property pop-order correctness needs. `as u64`
    /// saturates on overflow: astronomically late entries all land on
    /// day `u64::MAX` and pop last, via the min-seek fallback.
    fn day_of(&self, time: f64) -> u64 {
        (time * self.inv_width) as u64
    }

    /// Bucket index for day `day` (bucket count is a power of two).
    fn bucket_of(&self, day: u64) -> usize {
        (day & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Schedules `payload` at `time` with tie-break rank `seq`.
    pub fn push(&mut self, time: f64, seq: u64, payload: T) {
        assert!(time.is_finite(), "event time must be finite");
        let day = self.day_of(time);
        if self.len == 0 || day < self.cur_day {
            // (Re-)anchor the scan: either this is the only entry, or it
            // lands before the current scan window and the scan must
            // rewind so it cannot be skipped. Scanning from an earlier
            // day is always safe (it only re-examines buckets).
            self.cur_day = day;
        }
        let b = self.bucket_of(day);
        let bucket = &mut self.buckets[b];
        // Buckets are sorted ascending by (time, seq): the minimum sits
        // at the front and pops in O(1). A push that sorts after the
        // current back — the common case for near-monotone schedules —
        // is a single compare plus append.
        let at_back = match bucket.back() {
            None => true,
            Some(e) => e.time < time || (e.time == time && e.seq < seq),
        };
        if at_back {
            bucket.push_back(Entry { time, seq, payload });
        } else {
            let idx = bucket
                .partition_point(|e| e.time < time || (e.time == time && e.seq < seq));
            bucket.insert(idx, Entry { time, seq, payload });
        }
        self.len += 1;
        self.stats.peak_len = self.stats.peak_len.max(self.len);
        if self.len > 2 * self.buckets.len() {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Advances the scan until the current day's bucket front is the
    /// global minimum and is due (its day is not after `cur_day`).
    /// Requires `len > 0`.
    fn locate_min(&mut self) {
        debug_assert!(self.len > 0);
        loop {
            let n = self.buckets.len();
            for _ in 0..n {
                let b = self.bucket_of(self.cur_day);
                if let Some(front) = self.buckets[b].front() {
                    if self.day_of(front.time) <= self.cur_day {
                        return;
                    }
                }
                self.cur_day = self.cur_day.saturating_add(1);
            }
            // A whole year of empty windows: the next event is far away.
            // Jump the scan straight to the global minimum instead of
            // spinning through more empty years.
            self.seek_to_min();
        }
    }

    /// The minimum entry's `(time, seq)` without removing it.
    ///
    /// Takes `&mut self` because finding the minimum advances the
    /// internal scan position — an immediately following
    /// [`pop`](CalendarQueue::pop) is then `O(1)`.
    pub fn peek(&mut self) -> Option<(f64, u64)> {
        if self.len == 0 {
            return None;
        }
        self.locate_min();
        let b = self.bucket_of(self.cur_day);
        let e = self.buckets[b].front().expect("locate_min found an entry");
        Some((e.time, e.seq))
    }

    /// Removes and returns the minimum entry as `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(f64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        self.locate_min();
        let b = self.bucket_of(self.cur_day);
        let e = self.buckets[b].pop_front().expect("locate_min found an entry");
        self.len -= 1;
        if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
        Some((e.time, e.seq, e.payload))
    }

    /// Points the scan at the day holding the global minimum entry.
    fn seek_to_min(&mut self) {
        debug_assert!(self.len > 0);
        let mut best: Option<(f64, u64)> = None;
        for bucket in &self.buckets {
            if let Some(e) = bucket.front() {
                let better = match best {
                    None => true,
                    Some((t, s)) => e.time < t || (e.time == t && e.seq < s),
                };
                if better {
                    best = Some((e.time, e.seq));
                }
            }
        }
        let (t, _) = best.expect("len > 0 implies a minimum exists");
        self.cur_day = self.day_of(t);
    }

    /// Rebuilds the bucket array with `new_n` buckets and a width fitted
    /// to the current contents.
    fn rebuild(&mut self, new_n: usize) {
        let new_n = new_n.max(MIN_BUCKETS);
        let mut entries: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.extend(bucket.drain(..));
        }
        debug_assert_eq!(entries.len(), self.len);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in &entries {
            lo = lo.min(e.time);
            hi = hi.max(e.time);
        }
        // Spread the span over the new bucket count (~1 entry/bucket if
        // uniform). A degenerate span keeps the previous width.
        let span = hi - lo;
        if span > 0.0 {
            let w = span / new_n as f64;
            let inv = 1.0 / w;
            if w.is_finite() && w > 0.0 && inv.is_finite() && inv > 0.0 {
                self.width = w;
                self.inv_width = inv;
            }
        }
        self.buckets = (0..new_n).map(|_| VecDeque::new()).collect();
        self.len = 0;
        let anchor = if entries.is_empty() { 0.0 } else { lo };
        self.cur_day = self.day_of(anchor);
        let peak = self.stats.peak_len;
        for e in entries {
            self.push(e.time, e.seq, e.payload);
        }
        self.stats.peak_len = peak; // rebuild must not inflate the peak
        self.stats.resizes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        for (i, t) in [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().enumerate() {
            q.push(t, i as u64, t);
        }
        let mut out = Vec::new();
        while let Some((t, _, _)) = q.pop() {
            out.push(t);
        }
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn ties_break_by_seq() {
        let mut q = CalendarQueue::new();
        for seq in [3u64, 1, 2] {
            q.push(7.0, seq, seq);
        }
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = CalendarQueue::new();
        q.push(10.0, 0, "a");
        q.push(20.0, 1, "b");
        assert_eq!(q.pop().unwrap().2, "a");
        // Push earlier than the already-scanned position but after the
        // last pop — must still come out before "b".
        q.push(12.0, 2, "c");
        assert_eq!(q.pop().unwrap().2, "c");
        assert_eq!(q.pop().unwrap().2, "b");
    }

    #[test]
    fn rewinds_for_out_of_order_push() {
        let mut q = CalendarQueue::new();
        q.push(1000.0, 0, "far");
        // Walk the scan forward by popping nothing yet; now push early.
        q.push(1.0, 1, "near");
        assert_eq!(q.pop().unwrap().2, "near");
        assert_eq!(q.pop().unwrap().2, "far");
    }

    #[test]
    fn grows_and_shrinks_through_resizes() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u64 {
            q.push(i as f64 * 0.25, i, i);
        }
        assert!(q.stats().resizes > 0, "10k entries must trigger growth");
        assert_eq!(q.stats().peak_len, 10_000);
        let mut prev = -1.0;
        for want in 0..10_000u64 {
            let (t, seq, v) = q.pop().unwrap();
            assert!(t >= prev);
            prev = t;
            assert_eq!(seq, want);
            assert_eq!(v, want);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn sparse_far_future_events_use_min_seek() {
        let mut q = CalendarQueue::new();
        // Huge gaps relative to the initial width force the year-sweep
        // fallback; order must survive.
        for (i, t) in [1e9, 1.0, 1e6, 1e3].into_iter().enumerate() {
            q.push(t, i as u64, t);
        }
        let mut out = Vec::new();
        while let Some((t, _, _)) = q.pop() {
            out.push(t);
        }
        assert_eq!(out, vec![1.0, 1e3, 1e6, 1e9]);
    }

    #[test]
    fn identical_times_all_in_one_bucket() {
        let mut q = CalendarQueue::new();
        for seq in 0..100u64 {
            q.push(42.0, seq, seq);
        }
        for want in 0..100u64 {
            assert_eq!(q.pop().unwrap().1, want);
        }
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }
}
