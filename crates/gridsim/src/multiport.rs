//! Ablation of the single-port assumption (§2.3): a `k`-port root and an
//! optional shared wide-area link.
//!
//! The paper models the root as strictly single-port because that is what
//! it observed ("many nodes are simple PCs with full-duplex network
//! cards"). This module asks *what if*: the root initiates transfers in
//! scatter order but may run up to `ports` of them concurrently; remote
//! transfers optionally serialize on a shared WAN link between the two
//! sites (the Strasbourg/Montpellier topology of §5.1).
//!
//! Model simplifications (documented, deliberate): concurrent transfers do
//! not share NIC bandwidth (ports are independent), and the WAN either
//! serializes remote transfers (capacity ~ one transfer) or is
//! transparent. This brackets the real behaviour from both sides, which is
//! all the ablation needs.

use gs_scatter::cost::Processor;
use gs_scatter::distribution::Timeline;

use crate::load::LoadTrace;

/// Multi-port topology parameters.
#[derive(Debug, Clone)]
pub struct MultiportConfig {
    /// Concurrent outgoing transfers the root sustains (`1` = the paper's
    /// model).
    pub ports: usize,
    /// Site of each processor, in scatter order. Transfers to a site
    /// different from `root_site` are *remote*.
    pub sites: Vec<usize>,
    /// The root's site.
    pub root_site: usize,
    /// Whether remote transfers serialize on a shared WAN link.
    pub wan_serializes: bool,
}

impl MultiportConfig {
    /// The paper's model: one port, topology irrelevant.
    pub fn single_port(p: usize) -> Self {
        MultiportConfig { ports: 1, sites: vec![0; p], root_site: 0, wan_serializes: false }
    }
}

/// Simulates a scatter + compute phase under the multi-port model.
///
/// Transfers are *initiated* in scatter order (as MPICH posts them); each
/// starts when a port is free, and — if remote with `wan_serializes` —
/// when the WAN is also free. Returns the usual timeline (scatter order).
pub fn simulate_multiport(
    procs: &[&Processor],
    counts: &[usize],
    config: &MultiportConfig,
    loads: &[LoadTrace],
) -> Timeline {
    let p = procs.len();
    assert_eq!(counts.len(), p);
    assert_eq!(config.sites.len(), p, "one site per processor");
    assert!(config.ports >= 1, "at least one port");
    assert!(loads.is_empty() || loads.len() == p);

    // Min-heap of port availability times.
    let mut port_ends: Vec<f64> = vec![0.0; config.ports];
    let mut wan_free = 0.0f64;
    let mut comm_start = Vec::with_capacity(p);
    let mut comm_end = Vec::with_capacity(p);
    let mut finish = Vec::with_capacity(p);
    // Transfers must also respect initiation order: transfer i cannot
    // start before transfer i-1 STARTED (posts are ordered).
    let mut prev_start = 0.0f64;

    for i in 0..p {
        // Earliest-free port.
        let (port_idx, &port_t) = port_ends
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let remote = config.sites[i] != config.root_site;
        let mut start = port_t.max(prev_start);
        if remote && config.wan_serializes {
            start = start.max(wan_free);
        }
        let dur = procs[i].comm.eval(counts[i]);
        let end = start + dur;
        port_ends[port_idx] = end;
        if remote && config.wan_serializes {
            wan_free = end;
        }
        prev_start = start;
        comm_start.push(start);
        comm_end.push(end);
        let work = procs[i].comp.eval(counts[i]);
        let f = match loads.get(i) {
            Some(l) => l.finish_time(end, work),
            None => end + work,
        };
        finish.push(f);
    }

    Timeline { comm_start, comm_end, finish }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scatter::distribution::timeline;

    fn procs() -> Vec<Processor> {
        vec![
            Processor::linear("a", 1.0, 2.0),
            Processor::linear("b", 2.0, 1.0),
            Processor::linear("c", 0.5, 3.0),
            Processor::linear("root", 0.0, 1.0),
        ]
    }

    #[test]
    fn one_port_equals_paper_model() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = [3usize, 2, 4, 1];
        let mp = simulate_multiport(&view, &counts, &MultiportConfig::single_port(4), &[]);
        let analytic = timeline(&view, &counts);
        assert_eq!(mp, analytic);
    }

    #[test]
    fn infinite_ports_start_everything_at_zero() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = [3usize, 2, 4, 1];
        let cfg = MultiportConfig { ports: 4, sites: vec![0; 4], root_site: 0, wan_serializes: false };
        let tl = simulate_multiport(&view, &counts, &cfg, &[]);
        assert!(tl.comm_start.iter().all(|&s| s == 0.0));
        // Each finish is its own comm + comp.
        assert_eq!(tl.finish[0], 3.0 + 6.0);
        assert_eq!(tl.finish[1], 4.0 + 2.0);
    }

    #[test]
    fn two_ports_interleave() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = [3usize, 2, 4, 1]; // durations 3, 4, 2, 0
        let cfg = MultiportConfig { ports: 2, sites: vec![0; 4], root_site: 0, wan_serializes: false };
        let tl = simulate_multiport(&view, &counts, &cfg, &[]);
        // t0: a on port0 (0..3), b on port1 (0..4); c starts when port0
        // frees at 3 (3..5); root at 4 on port1.
        assert_eq!(tl.comm_start, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(tl.comm_end, vec![3.0, 4.0, 5.0, 4.0]);
    }

    #[test]
    fn wan_serializes_remote_transfers() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = [3usize, 2, 4, 1]; // durations 3, 4, 2, 0
        // a and b remote, c and root local; plenty of ports.
        let cfg = MultiportConfig {
            ports: 4,
            sites: vec![1, 1, 0, 0],
            root_site: 0,
            wan_serializes: true,
        };
        let tl = simulate_multiport(&view, &counts, &cfg, &[]);
        // a: 0..3 on the WAN; b must wait: 3..7; c local 3.. (post order:
        // c can't start before b started at 3) 3..5.
        assert_eq!(tl.comm_start[0], 0.0);
        assert_eq!(tl.comm_start[1], 3.0);
        assert_eq!(tl.comm_end[1], 7.0);
        assert_eq!(tl.comm_start[2], 3.0);
    }

    #[test]
    fn more_ports_never_hurt() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = [5usize, 5, 5, 5];
        let mut prev = f64::INFINITY;
        for ports in 1..=4 {
            let cfg = MultiportConfig { ports, sites: vec![0; 4], root_site: 0, wan_serializes: false };
            let tl = simulate_multiport(&view, &counts, &cfg, &[]);
            assert!(tl.makespan() <= prev + 1e-12, "ports={ports}");
            prev = tl.makespan();
        }
    }

    #[test]
    fn loads_apply() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = [3usize, 0, 0, 0];
        let cfg = MultiportConfig::single_port(4);
        let loads = vec![
            LoadTrace::new(vec![(0.0, 2.0)]),
            LoadTrace::none(),
            LoadTrace::none(),
            LoadTrace::none(),
        ];
        let tl = simulate_multiport(&view, &counts, &cfg, &loads);
        // comm 3, work 6 at half speed => 3 + 12 = 15.
        assert_eq!(tl.finish[0], 15.0);
    }
}
