//! Lexical rewriting of `MPI_Scatter` call sites.

use std::fmt;

/// One rewritten call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// Byte offset of the original call in the input.
    pub offset: usize,
    /// 1-based line number of the call.
    pub line: usize,
    /// The original call text.
    pub original: String,
    /// The replacement text.
    pub replacement: String,
}

/// Result of a transformation pass.
#[derive(Debug, Clone)]
pub struct TransformReport {
    /// The transformed source.
    pub source: String,
    /// Call sites rewritten, in order of appearance.
    pub rewrites: Vec<Rewrite>,
    /// Call sites that looked like `MPI_Scatter` but could not be parsed
    /// (wrong arity); left untouched.
    pub skipped: Vec<usize>,
}

impl fmt::Display for TransformReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} call(s) rewritten, {} skipped",
            self.rewrites.len(),
            self.skipped.len()
        )?;
        for r in &self.rewrites {
            writeln!(f, "  line {}: MPI_Scatter -> MPI_Scatterv", r.line)?;
        }
        Ok(())
    }
}

/// Names used by the generated code.
pub(crate) const COUNTS_VAR: &str = "gs_counts";
pub(crate) const DISPLS_VAR: &str = "gs_displs";
pub(crate) const RANK_VAR: &str = "gs_rank";

/// Rewrites every `MPI_Scatter(...)` call in `source` into the
/// corresponding `MPI_Scatterv(...)` call using the generated
/// `gs_counts`/`gs_displs` arrays (see [`crate::emit_plan_arrays`]).
///
/// ```
/// use gs_transform::transform_source;
/// let report = transform_source(
///     "MPI_Scatter(buf, n/P, T, r, n/P, T, 0, COMM);",
/// );
/// assert_eq!(report.rewrites.len(), 1);
/// assert!(report.source.starts_with("MPI_Scatterv(buf, gs_counts, gs_displs,"));
/// ```
///
/// `MPI_Scatter` takes
/// `(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, root, comm)`;
/// the rewrite preserves every argument except the two counts, exactly as
/// the paper's minimal-intrusion transformation prescribes. Occurrences
/// inside string literals, character literals, and `//`/`/* */` comments
/// are left alone, as are calls that already read `MPI_Scatterv`.
pub fn transform_source(source: &str) -> TransformReport {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len() + 256);
    let mut rewrites = Vec::new();
    let mut skipped = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        // Skip comments and string/char literals wholesale.
        if let Some(end) = skip_non_code(source, i) {
            out.push_str(&source[i..end]);
            i = end;
            continue;
        }
        if let Some(call) = match_scatter_call(source, i) {
            match split_args(&source[call.args_start..call.args_end]) {
                Some(args) if args.len() == 8 => {
                    let replacement = format!(
                        "MPI_Scatterv({}, {COUNTS_VAR}, {DISPLS_VAR}, {}, {}, {COUNTS_VAR}[{RANK_VAR}], {}, {}, {})",
                        args[0].trim(),
                        args[2].trim(),
                        args[3].trim(),
                        args[5].trim(),
                        args[6].trim(),
                        args[7].trim(),
                    );
                    rewrites.push(Rewrite {
                        offset: i,
                        line: line_of(source, i),
                        original: source[i..call.call_end].to_string(),
                        replacement: replacement.clone(),
                    });
                    out.push_str(&replacement);
                    i = call.call_end;
                    continue;
                }
                _ => skipped.push(line_of(source, i)),
            }
        }
        // Default: copy one char.
        let ch_len = source[i..].chars().next().map_or(1, char::len_utf8);
        out.push_str(&source[i..i + ch_len]);
        i += ch_len;
    }

    TransformReport { source: out, rewrites, skipped }
}

struct CallSite {
    args_start: usize,
    args_end: usize,
    call_end: usize,
}

/// If `source[i..]` begins an `MPI_Scatter(` call (not `MPI_Scatterv`,
/// not part of a longer identifier), returns the argument span.
fn match_scatter_call(source: &str, i: usize) -> Option<CallSite> {
    const NAME: &str = "MPI_Scatter";
    if !source[i..].starts_with(NAME) {
        return None;
    }
    // Not preceded by an identifier character.
    if i > 0 {
        let prev = source[..i].chars().next_back().unwrap();
        if prev.is_ascii_alphanumeric() || prev == '_' {
            return None;
        }
    }
    // Followed (after whitespace) by '(' and not a longer identifier
    // (e.g. MPI_Scatterv itself).
    let after = &source[i + NAME.len()..];
    let next = after.chars().next()?;
    if next.is_ascii_alphanumeric() || next == '_' {
        return None;
    }
    let ws: usize = after.chars().take_while(|c| c.is_whitespace()).map(char::len_utf8).sum();
    if !after[ws..].starts_with('(') {
        return None;
    }
    let args_start = i + NAME.len() + ws + 1;
    let args_end = find_matching_paren(source, args_start - 1)?;
    Some(CallSite { args_start, args_end, call_end: args_end + 1 })
}

/// Given the index of a '(', returns the index of its matching ')'.
fn find_matching_paren(source: &str, open: usize) -> Option<usize> {
    debug_assert_eq!(&source[open..open + 1], "(");
    let mut depth = 0i32;
    let mut j = open;
    let bytes = source.as_bytes();
    while j < bytes.len() {
        if let Some(end) = skip_non_code(source, j) {
            j = end;
            continue;
        }
        match bytes[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Splits a C argument list at top-level commas (respecting nested parens,
/// brackets, and literals). Returns `None` on unbalanced input.
fn split_args(args: &str) -> Option<Vec<String>> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let bytes = args.as_bytes();
    let mut j = 0usize;
    while j < bytes.len() {
        if let Some(end) = skip_non_code(args, j) {
            j = end;
            continue;
        }
        match bytes[j] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push(args[start..j].to_string());
                start = j + 1;
            }
            _ => {}
        }
        if depth < 0 {
            return None;
        }
        j += 1;
    }
    if depth != 0 {
        return None;
    }
    out.push(args[start..].to_string());
    Some(out)
}

/// If position `i` starts a comment or string/char literal, returns the
/// index just past it; otherwise `None`.
fn skip_non_code(source: &str, i: usize) -> Option<usize> {
    let rest = &source[i..];
    if rest.starts_with("//") {
        let end = rest.find('\n').map_or(source.len(), |p| i + p + 1);
        return Some(end);
    }
    if let Some(body) = rest.strip_prefix("/*") {
        let end = body.find("*/").map_or(source.len(), |p| i + p + 4);
        return Some(end);
    }
    if rest.starts_with('"') || rest.starts_with('\'') {
        let quote = rest.as_bytes()[0];
        let bytes = source.as_bytes();
        let mut j = i + 1;
        while j < bytes.len() {
            if bytes[j] == b'\\' {
                j += 2;
                continue;
            }
            if bytes[j] == quote {
                return Some(j + 1);
            }
            j += 1;
        }
        return Some(source.len());
    }
    None
}

fn line_of(source: &str, offset: usize) -> usize {
    source[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_SNIPPET: &str = r#"
if (rank == ROOT)
    raydata = read_lines(datafile, n);
MPI_Scatter(raydata, n/P, MPI_DOUBLE, rbuff, n/P, MPI_DOUBLE, ROOT, MPI_COMM_WORLD);
compute_work(rbuff);
"#;

    #[test]
    fn rewrites_the_papers_example() {
        let report = transform_source(PAPER_SNIPPET);
        assert_eq!(report.rewrites.len(), 1);
        assert!(report.source.contains(
            "MPI_Scatterv(raydata, gs_counts, gs_displs, MPI_DOUBLE, rbuff, gs_counts[gs_rank], MPI_DOUBLE, ROOT, MPI_COMM_WORLD)"
        ));
        assert!(!report.source.contains("MPI_Scatter(" ), "original call gone");
        assert!(report.source.contains("compute_work(rbuff);"), "rest untouched");
    }

    #[test]
    fn line_numbers_reported() {
        let report = transform_source(PAPER_SNIPPET);
        assert_eq!(report.rewrites[0].line, 4);
    }

    #[test]
    fn nested_parens_in_args() {
        let src = "MPI_Scatter(buf(x, y), f(n, P), T, r, g(n), T, root(0), COMM);";
        let report = transform_source(src);
        assert_eq!(report.rewrites.len(), 1);
        assert!(report.source.contains("MPI_Scatterv(buf(x, y), gs_counts, gs_displs, T, r, gs_counts[gs_rank], T, root(0), COMM)"));
    }

    #[test]
    fn leaves_scatterv_alone() {
        let src = "MPI_Scatterv(a, counts, displs, T, b, c, T, 0, COMM);";
        let report = transform_source(src);
        assert!(report.rewrites.is_empty());
        assert_eq!(report.source, src);
    }

    #[test]
    fn leaves_comments_and_strings_alone() {
        let src = r#"
// MPI_Scatter(a, b, c, d, e, f, g, h);
/* MPI_Scatter(a, b, c, d, e, f, g, h); */
printf("MPI_Scatter(a, b, c, d, e, f, g, h);");
"#;
        let report = transform_source(src);
        assert!(report.rewrites.is_empty());
        assert_eq!(report.source, src);
    }

    #[test]
    fn multiple_calls() {
        let src = "MPI_Scatter(a,1,T,b,1,T,0,C); x(); MPI_Scatter(c,2,T,d,2,T,0,C);";
        let report = transform_source(src);
        assert_eq!(report.rewrites.len(), 2);
        assert_eq!(report.source.matches("MPI_Scatterv").count(), 2);
    }

    #[test]
    fn wrong_arity_is_skipped() {
        let src = "MPI_Scatter(a, b, c);";
        let report = transform_source(src);
        assert!(report.rewrites.is_empty());
        assert_eq!(report.skipped, vec![1]);
        assert_eq!(report.source, src);
    }

    #[test]
    fn identifier_prefixes_not_matched() {
        let src = "my_MPI_Scatter(a,1,T,b,1,T,0,C); MPI_Scatter_thing(a,1,T,b,1,T,0,C);";
        let report = transform_source(src);
        assert!(report.rewrites.is_empty());
        assert_eq!(report.source, src);
    }

    #[test]
    fn idempotent() {
        let once = transform_source(PAPER_SNIPPET);
        let twice = transform_source(&once.source);
        assert!(twice.rewrites.is_empty());
        assert_eq!(twice.source, once.source);
    }

    #[test]
    fn whitespace_between_name_and_paren() {
        let src = "MPI_Scatter (a,1,T,b,1,T,0,C);";
        let report = transform_source(src);
        assert_eq!(report.rewrites.len(), 1);
    }

    #[test]
    fn string_with_escapes() {
        let src = r#"puts("quote \" MPI_Scatter(x,x,x,x,x,x,x,x) \" end");"#;
        let report = transform_source(src);
        assert!(report.rewrites.is_empty());
        assert_eq!(report.source, src);
    }

    #[test]
    fn report_display() {
        let report = transform_source(PAPER_SNIPPET);
        let text = report.to_string();
        assert!(text.contains("1 call(s) rewritten"));
        assert!(text.contains("line 4"));
    }
}
