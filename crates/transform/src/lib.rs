//! # gs-transform — the "software tool" of the paper's introduction
//!
//! §1 of the paper: *"In term of source code rewriting, the transformation
//! of such operations does not require a deep source code re-organization,
//! and it can easily be automated in a software tool."* This crate is that
//! tool: it rewrites `MPI_Scatter` calls in C source into `MPI_Scatterv`
//! calls parameterized by a plan from [`gs_scatter`], and generates the C
//! initialization code for the `counts`/`displs` arrays.
//!
//! The paper's own example (§2.2):
//!
//! ```c
//! MPI_Scatter(raydata, n/P, MPI_DOUBLE, rbuff, n/P, MPI_DOUBLE, ROOT, MPI_COMM_WORLD);
//! ```
//!
//! becomes
//!
//! ```c
//! MPI_Scatterv(raydata, gs_counts, gs_displs, MPI_DOUBLE,
//!              rbuff, gs_counts[gs_rank], MPI_DOUBLE, ROOT, MPI_COMM_WORLD);
//! ```
//!
//! plus a generated block defining `gs_counts`/`gs_displs` from the
//! planner's distribution.
//!
//! The rewriter is deliberately lexical (no C parser): it matches call
//! sites with balanced-parenthesis argument splitting, skips string
//! literals and comments, and leaves everything else byte-identical —
//! the "as little modification as possible" philosophy of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod rewrite;

pub use codegen::{emit_plan_arrays, CodegenOptions};
pub use rewrite::{transform_source, Rewrite, TransformReport};
