//! Property tests for the source rewriter: on randomly generated C-ish
//! programs, the transformation touches exactly the real `MPI_Scatter`
//! call sites and nothing else, and is idempotent.

use gs_transform::transform_source;
use proptest::prelude::*;

/// The fragment catalogue a generated "program" is assembled from; the
/// index *is* the kind, so tests can count expectations.
fn fragment_text(kind: usize) -> &'static str {
    match kind {
        0 => "int x = compute(a, b);\n",
        1 => "// MPI_Scatter(a,b,c,d,e,f,g,h) in a comment\n",
        2 => "/* block comment MPI_Scatter(1,2,3,4,5,6,7,8) */\n",
        3 => "printf(\"MPI_Scatter(%d)\", n);\n",
        4 => "MPI_Scatterv(buf, cnt, dsp, T, r, c, T, 0, COMM);\n",
        5 => "MPI_Scatter(send, n/P, T, recv, n/P, T, 0, COMM);\n",
        6 => "MPI_Scatter(f(a, g(b)), n, T, r, n, T, root(), comm());\n",
        7 => "my_MPI_Scatter(a, b, c, d, e, f, g, h);\n",
        8 => "if (rank == 0) { read_input(); }\n",
        9 => "MPI_Scatter(a, b);\n", // wrong arity: skipped
        _ => "char *s = \"quote \\\" inside\";\n",
    }
}

fn program() -> impl Strategy<Value = (Vec<usize>, String)> {
    proptest::collection::vec(0usize..11, 0..25).prop_map(|kinds| {
        let text: String = kinds.iter().map(|&k| fragment_text(k)).collect();
        (kinds, text)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn rewrites_exactly_the_real_call_sites((kinds, text) in program()) {
        // Kinds 5 and 6 are the genuine 8-argument MPI_Scatter calls.
        let expected = kinds.iter().filter(|&&k| k == 5 || k == 6).count();
        let report = transform_source(&text);
        prop_assert_eq!(report.rewrites.len(), expected);
        // Kind 9 (wrong arity) is reported as skipped.
        let expected_skipped = kinds.iter().filter(|&&k| k == 9).count();
        prop_assert_eq!(report.skipped.len(), expected_skipped);
    }

    #[test]
    fn non_call_text_is_preserved_verbatim((_kinds, text) in program()) {
        let report = transform_source(&text);
        // Removing all call rewrites from both texts leaves identical
        // residue: check total length accounting.
        let mut reconstructed = report.source.clone();
        for r in &report.rewrites {
            reconstructed = reconstructed.replacen(&r.replacement, &r.original, 1);
        }
        prop_assert_eq!(reconstructed, text);
    }

    #[test]
    fn idempotent((_kinds, text) in program()) {
        let once = transform_source(&text);
        let twice = transform_source(&once.source);
        prop_assert!(twice.rewrites.is_empty(), "second pass must find nothing");
        prop_assert_eq!(&twice.source, &once.source);
    }

    #[test]
    fn output_never_contains_bare_scatter_call((_kinds, text) in program()) {
        let report = transform_source(&text);
        // Re-scan: any remaining `MPI_Scatter(` in code position would be
        // found by a third pass; combined with idempotency this means only
        // comments/strings/wrong-arity occurrences remain.
        let third = transform_source(&report.source);
        prop_assert!(third.rewrites.is_empty());
    }
}
